// Device global memory with coalescing accounting.
//
// DeviceBuffer<T> stands in for a cudaMalloc'd array.  Warp-wide loads and
// stores record how many 32-byte DRAM sectors the access touches, which is
// what the timing model charges against device-memory bandwidth -- exactly
// the coalescing consideration the paper optimizes for (Sec. I: "Efficiently
// accessing global memory in a coalesced pattern is critical").
#pragma once

#include "core/check.hpp"
#include "core/matrix.hpp"
#include "simt/access_analysis.hpp"
#include "simt/lane_vec.hpp"
#include "simt/profiler.hpp"

#include <atomic>
#include <memory>
#include <source_location>
#include <span>
#include <vector>

namespace satgpu::simt {

template <typename T>
class DeviceBuffer {
public:
    DeviceBuffer() = default;

    explicit DeviceBuffer(std::int64_t count, T fill = T{})
        : data_(static_cast<std::size_t>(count), fill)
    {
        SATGPU_EXPECTS(count >= 0);
    }

    [[nodiscard]] static DeviceBuffer from_matrix(const Matrix<T>& m)
    {
        DeviceBuffer b(m.size());
        std::copy(m.flat().begin(), m.flat().end(), b.data_.begin());
        return b;
    }

    [[nodiscard]] Matrix<T> to_matrix(std::int64_t height,
                                      std::int64_t width) const
    {
        SATGPU_EXPECTS(height * width == size());
        Matrix<T> m(height, width);
        std::copy(data_.begin(), data_.end(), m.flat().begin());
        return m;
    }

    [[nodiscard]] std::int64_t size() const noexcept
    {
        return static_cast<std::int64_t>(data_.size());
    }

    /// Host-side view (the equivalent of cudaMemcpy'ing back).
    [[nodiscard]] std::span<T> host() noexcept { return data_; }
    [[nodiscard]] std::span<const T> host() const noexcept { return data_; }

    /// Debug aid for the parallel engine's disjoint-tile write discipline:
    /// once enabled, every `store`/`store_vec` records which block wrote
    /// each element, and a second store from a DIFFERENT block of the SAME
    /// launch aborts.  Such overlap is a data race under concurrent block
    /// execution (and nondeterministic on real hardware); `atomic_add` is
    /// exempt because cross-block atomics are hardware-sanctioned.
    void debug_detect_overlapping_writes()
    {
        // new[]() value-initializes, so every tag starts at 0 ("untouched").
        // (make_shared<T[]> copy-fills in libstdc++ 12, which atomics
        // forbid.)
        overlap_ = std::shared_ptr<std::atomic<std::uint64_t>[]>(
            new std::atomic<std::uint64_t>[data_.size()]());
    }

    /// Warp-wide load: lane l reads element idx[l]; inactive lanes get T{}.
    /// `site` defaults to the caller's location; the profiler's
    /// uncoalesced-sector hotspot table is keyed by it.
    [[nodiscard]] LaneVec<T> load(const LaneVec<std::int64_t>& idx,
                                  LaneMask active = kFullMask,
                                  std::source_location site = SATGPU_SITE)
        const
    {
        LaneVec<T> r{};
        if (current_counters() == nullptr) {
            // Uninstrumented fast path (the native backend's fresh worker
            // threads): only the bounds-checked data movement.
            for (int l = 0; l < kWarpSize; ++l) {
                if (!lane_active(active, l))
                    continue;
                const std::int64_t i = idx.get(l);
                SATGPU_CHECK(i >= 0 && i < size(),
                             "gmem load out of bounds");
                r.set(l, data_[static_cast<std::size_t>(i)]);
            }
            return r;
        }
        ByteAddrs addrs{};
        for (int l = 0; l < kWarpSize; ++l) {
            if (!lane_active(active, l))
                continue;
            const std::int64_t i = idx.get(l);
            SATGPU_CHECK(i >= 0 && i < size(), "gmem load out of bounds");
            r.set(l, data_[static_cast<std::size_t>(i)]);
            addrs[static_cast<std::size_t>(l)] =
                i * static_cast<std::int64_t>(sizeof(T));
        }
        if (PerfCounters* c = current_counters()) {
            const auto sectors = static_cast<std::uint64_t>(
                gmem_sectors_touched(addrs, active, sizeof(T)));
            const auto bytes = static_cast<std::uint64_t>(
                                   active_lane_count(active)) *
                               sizeof(T);
            c->gmem_ld_req += 1;
            c->gmem_ld_sectors += sectors;
            c->gmem_bytes_ld += bytes;
            if (Profiler* p = current_profiler())
                p->record_gmem(site, /*is_store=*/false, sectors, bytes);
        }
        return r;
    }

    /// Warp-wide store: lane l writes val[l] to element idx[l].
    void store(const LaneVec<std::int64_t>& idx, const LaneVec<T>& val,
               LaneMask active = kFullMask,
               std::source_location site = SATGPU_SITE)
    {
        if (current_counters() == nullptr) {
            // Uninstrumented fast path; see load().
            for (int l = 0; l < kWarpSize; ++l) {
                if (!lane_active(active, l))
                    continue;
                const std::int64_t i = idx.get(l);
                SATGPU_CHECK(i >= 0 && i < size(),
                             "gmem store out of bounds");
                record_write(i);
                data_[static_cast<std::size_t>(i)] = val.get(l);
            }
            return;
        }
        ByteAddrs addrs{};
        for (int l = 0; l < kWarpSize; ++l) {
            if (!lane_active(active, l))
                continue;
            const std::int64_t i = idx.get(l);
            SATGPU_CHECK(i >= 0 && i < size(), "gmem store out of bounds");
            record_write(i);
            data_[static_cast<std::size_t>(i)] = val.get(l);
            addrs[static_cast<std::size_t>(l)] =
                i * static_cast<std::int64_t>(sizeof(T));
        }
        if (PerfCounters* c = current_counters()) {
            const auto sectors = static_cast<std::uint64_t>(
                gmem_sectors_touched(addrs, active, sizeof(T)));
            const auto bytes = static_cast<std::uint64_t>(
                                   active_lane_count(active)) *
                               sizeof(T);
            c->gmem_st_req += 1;
            c->gmem_st_sectors += sectors;
            c->gmem_bytes_st += bytes;
            if (Profiler* p = current_profiler())
                p->record_gmem(site, /*is_store=*/true, sectors, bytes);
        }
    }

    /// Warp-wide CONTIGUOUS load: lane l reads element base + l.  Identical
    /// semantics (and, when instrumented, identical accounting) to
    /// load(lane_index() + base, active) -- the contiguity is a statement
    /// of intent that lets the uninstrumented path move the row as one
    /// straight copy instead of a per-lane gather.
    [[nodiscard]] LaneVec<T> load_row(std::int64_t base,
                                      LaneMask active = kFullMask,
                                      std::source_location site = SATGPU_SITE)
        const
    {
        if (current_counters() == nullptr) {
            LaneVec<T> r{};
            if (active == kFullMask) {
                SATGPU_CHECK(base >= 0 && base + kWarpSize <= size(),
                             "gmem load out of bounds");
                const T* const p = data_.data() + base;
                for (int l = 0; l < kWarpSize; ++l)
                    r.set(l, p[l]);
                return r;
            }
            for (int l = 0; l < kWarpSize; ++l) {
                if (!lane_active(active, l))
                    continue;
                const std::int64_t i = base + l;
                SATGPU_CHECK(i >= 0 && i < size(),
                             "gmem load out of bounds");
                r.set(l, data_[static_cast<std::size_t>(i)]);
            }
            return r;
        }
        return load(LaneVec<std::int64_t>::lane_index() + base, active,
                    site);
    }

    /// Warp-wide CONTIGUOUS store: lane l writes val[l] to element base + l
    /// (see load_row).
    void store_row(std::int64_t base, const LaneVec<T>& val,
                   LaneMask active = kFullMask,
                   std::source_location site = SATGPU_SITE)
    {
        if (current_counters() == nullptr) {
            if (active == kFullMask && !overlap_) {
                SATGPU_CHECK(base >= 0 && base + kWarpSize <= size(),
                             "gmem store out of bounds");
                T* const p = data_.data() + base;
                for (int l = 0; l < kWarpSize; ++l)
                    p[l] = val.get(l);
                return;
            }
            for (int l = 0; l < kWarpSize; ++l) {
                if (!lane_active(active, l))
                    continue;
                const std::int64_t i = base + l;
                SATGPU_CHECK(i >= 0 && i < size(),
                             "gmem store out of bounds");
                record_write(i);
                data_[static_cast<std::size_t>(i)] = val.get(l);
            }
            return;
        }
        store(LaneVec<std::int64_t>::lane_index() + base, val, active, site);
    }

    /// Warp-wide atomicAdd: lane l adds val[l] to element idx[l].  Lanes
    /// hitting the same element serialize but all contribute (hardware
    /// semantics).  Returns the OLD values each lane observed; within a
    /// warp the serialization order is ascending lane, but -- exactly as on
    /// hardware -- the interleaving with atomics from OTHER blocks running
    /// concurrently is unspecified (the final sum is exact for integral T;
    /// floating-point totals may differ in rounding across schedules).
    LaneVec<T> atomic_add(const LaneVec<std::int64_t>& idx,
                          const LaneVec<T>& val, LaneMask active = kFullMask)
    {
        LaneVec<T> old{};
        for (int l = 0; l < kWarpSize; ++l) {
            if (!lane_active(active, l))
                continue;
            const std::int64_t i = idx.get(l);
            SATGPU_CHECK(i >= 0 && i < size(), "gmem atomic out of bounds");
            T& elem = data_[static_cast<std::size_t>(i)];
            if constexpr (std::is_integral_v<T>) {
                old.set(l, std::atomic_ref<T>(elem).fetch_add(
                               val.get(l), std::memory_order_relaxed));
            } else {
                std::atomic_ref<T> ref(elem);
                T prev = ref.load(std::memory_order_relaxed);
                while (!ref.compare_exchange_weak(
                    prev, static_cast<T>(prev + val.get(l)),
                    std::memory_order_relaxed)) {
                }
                old.set(l, prev);
            }
        }
        if (PerfCounters* c = current_counters())
            c->gmem_atomics += static_cast<std::uint64_t>(
                active_lane_count(active));
        return old;
    }

    /// Vector load: lane l reads N consecutive elements starting at
    /// base_idx[l] in ONE wide access (CUDA's uint2/uint4/vectorized
    /// loads; N*sizeof(T) must not exceed the hardware's 16-byte limit).
    /// Used by the OpenCV-style 8u shuffle path, which loads 16 pixels per
    /// thread as a uint4 (Sec. VI-B2).
    template <std::size_t N>
    [[nodiscard]] std::array<LaneVec<T>, N>
    load_vec(const LaneVec<std::int64_t>& base_idx,
             LaneMask active = kFullMask) const
    {
        static_assert(N >= 1 && N * sizeof(T) <= 16,
                      "vector accesses are at most 128-bit");
        std::array<LaneVec<T>, N> r{};
        ByteAddrs addrs{};
        for (int l = 0; l < kWarpSize; ++l) {
            if (!lane_active(active, l))
                continue;
            const std::int64_t i = base_idx.get(l);
            SATGPU_CHECK(i >= 0 &&
                             i + static_cast<std::int64_t>(N) <= size(),
                         "gmem vector load out of bounds");
            for (std::size_t k = 0; k < N; ++k)
                r[k].set(
                    l, data_[static_cast<std::size_t>(i) + k]);
            addrs[static_cast<std::size_t>(l)] =
                i * static_cast<std::int64_t>(sizeof(T));
        }
        if (PerfCounters* c = current_counters()) {
            c->gmem_ld_req += 1;
            c->gmem_ld_sectors += static_cast<std::uint64_t>(
                gmem_sectors_touched(addrs, active, static_cast<int>(N * sizeof(T))));
            c->gmem_bytes_ld +=
                static_cast<std::uint64_t>(active_lane_count(active)) *
                static_cast<std::uint64_t>(N) * sizeof(T);
        }
        return r;
    }

    /// Vector store: lane l writes N consecutive elements at base_idx[l].
    template <std::size_t N>
    void store_vec(const LaneVec<std::int64_t>& base_idx,
                   const std::array<LaneVec<T>, N>& vals,
                   LaneMask active = kFullMask)
    {
        static_assert(N >= 1 && N * sizeof(T) <= 16,
                      "vector accesses are at most 128-bit");
        ByteAddrs addrs{};
        for (int l = 0; l < kWarpSize; ++l) {
            if (!lane_active(active, l))
                continue;
            const std::int64_t i = base_idx.get(l);
            SATGPU_CHECK(i >= 0 &&
                             i + static_cast<std::int64_t>(N) <= size(),
                         "gmem vector store out of bounds");
            for (std::size_t k = 0; k < N; ++k) {
                record_write(i + static_cast<std::int64_t>(k));
                data_[static_cast<std::size_t>(i) + k] =
                    vals[k].get(l);
            }
            addrs[static_cast<std::size_t>(l)] =
                i * static_cast<std::int64_t>(sizeof(T));
        }
        if (PerfCounters* c = current_counters()) {
            c->gmem_st_req += 1;
            c->gmem_st_sectors += static_cast<std::uint64_t>(
                gmem_sectors_touched(addrs, active, static_cast<int>(N * sizeof(T))));
            c->gmem_bytes_st +=
                static_cast<std::uint64_t>(active_lane_count(active)) *
                static_cast<std::uint64_t>(N) * sizeof(T);
        }
    }

private:
    /// Overlap-detector bookkeeping: tag each element with (launch epoch,
    /// writer block).  Stale epochs read as "untouched", so no per-launch
    /// reset pass is needed.  Packing: epoch in the high 40 bits, writer
    /// linear block index + 1 in the low 24 (grids beyond 2^24 - 1 blocks
    /// fall outside the detector's remit and are skipped).
    void record_write(std::int64_t i)
    {
        if (!overlap_)
            return;
        const BlockIdentity id = current_block();
        if (id.linear < 0 || id.linear >= (std::int64_t{1} << 24) - 1)
            return; // outside a simulated block, or untrackably huge grid
        const std::uint64_t tag =
            (id.launch_epoch << 24) |
            static_cast<std::uint64_t>(id.linear + 1);
        const std::uint64_t prev =
            overlap_[static_cast<std::ptrdiff_t>(i)].exchange(
                tag, std::memory_order_relaxed);
        SATGPU_CHECK(prev == 0 || prev == tag || (prev >> 24) != (tag >> 24),
                     "overlapping global-memory writes: two blocks of one "
                     "launch stored to the same element");
    }

    std::vector<T> data_;
    std::shared_ptr<std::atomic<std::uint64_t>[]> overlap_;
};

} // namespace satgpu::simt
