#include "simt/hazard_checker.hpp"

#include "core/json_writer.hpp"
#include "simt/engine.hpp"

#include <algorithm>
#include <ostream>
#include <tuple>

namespace satgpu::simt {

namespace {

thread_local HazardChecker* g_hazard_checker = nullptr;

[[nodiscard]] std::string site_string(const std::source_location& site)
{
    return trim_source_path(site.file_name()) + ":" +
           std::to_string(site.line());
}

} // namespace

std::string_view to_string(HazardKind k) noexcept
{
    switch (k) {
    case HazardKind::kSmemRaw: return "smem-raw";
    case HazardKind::kSmemWar: return "smem-war";
    case HazardKind::kSmemWaw: return "smem-waw";
    case HazardKind::kSmemUninitRead: return "smem-uninit-read";
    case HazardKind::kBarrierDivergence: return "barrier-divergence";
    case HazardKind::kShuffleInactiveSource: return "shuffle-inactive-source";
    case HazardKind::kVoteInactivePredicate: return "vote-inactive-predicate";
    }
    return "?";
}

HazardChecker* current_hazard_checker() noexcept { return g_hazard_checker; }

HazardCheckerScope::HazardCheckerScope(HazardChecker* c) noexcept
    : prev_(g_hazard_checker)
{
    g_hazard_checker = c;
}

HazardCheckerScope::~HazardCheckerScope() { g_hazard_checker = prev_; }

void HazardChecker::begin_block(std::int64_t linear) noexcept
{
    block_seq_ += 1; // lazily invalidates every shadow entry
    epoch_ = 0;
    block_ = linear;
    warp_ = -1;
}

void HazardChecker::end_block() noexcept
{
    block_ = -1;
    warp_ = -1;
}

void HazardChecker::record(HazardKind kind, const std::source_location& site,
                           const std::source_location* other_site,
                           std::string_view note, std::int64_t detail,
                           int warp, int other_warp)
{
    Key key{kind, site_string(site),
            other_site ? site_string(*other_site) : std::string{},
            std::string(note)};
    Accum& a = findings_[std::move(key)];
    a.count += 1;
    const auto cand = std::tuple(block_, detail, warp, other_warp);
    if (a.count == 1 ||
        cand < std::tuple(a.first_block, a.detail, a.warp, a.other_warp)) {
        a.first_block = block_;
        a.detail = detail;
        a.warp = warp;
        a.other_warp = other_warp;
    }
}

void HazardChecker::record_smem_access(bool is_store, std::int64_t byte_offset,
                                       std::string_view alloc_name,
                                       const std::source_location& site)
{
    if (byte_offset < 0)
        return;
    const auto off = static_cast<std::size_t>(byte_offset);
    if (off >= shadow_.size())
        shadow_.resize(std::max(off + 1, shadow_.size() * 2));
    ElemShadow& e = shadow_[off];
    if (e.block_seq != block_seq_) {
        e = ElemShadow{};
        e.block_seq = block_seq_;
    }
    const std::uint32_t self_bit =
        (warp_ >= 0 && warp_ < 32) ? (1u << warp_) : 0u;
    if (is_store) {
        if (e.written && e.writer_warp != warp_ && e.write_epoch == epoch_) {
            record(HazardKind::kSmemWaw, site, &e.write_site, alloc_name,
                   byte_offset, warp_, e.writer_warp);
        } else if ((e.reader_warps & ~self_bit) != 0 &&
                   e.read_epoch == epoch_) {
            record(HazardKind::kSmemWar, site, &e.read_site, alloc_name,
                   byte_offset, warp_,
                   std::countr_zero(e.reader_warps & ~self_bit));
        }
        e.written = true;
        e.writer_warp = warp_;
        e.write_epoch = epoch_;
        e.write_site = site;
        e.reader_warps = 0; // earlier readers were checked against above
    } else {
        if (!e.written) {
            record(HazardKind::kSmemUninitRead, site, nullptr, alloc_name,
                   byte_offset, warp_, -1);
        } else if (e.writer_warp != warp_ && e.write_epoch == epoch_) {
            record(HazardKind::kSmemRaw, site, &e.write_site, alloc_name,
                   byte_offset, warp_, e.writer_warp);
        }
        if (e.read_epoch != epoch_)
            e.reader_warps = 0;
        e.read_epoch = epoch_;
        e.reader_warps |= self_bit;
        e.read_site = site;
    }
}

void HazardChecker::record_barrier_divergence(
    int finished_warp, int waiting_warp, const std::source_location& wait_site)
{
    record(HazardKind::kBarrierDivergence, wait_site, nullptr, {}, -1,
           waiting_warp, finished_warp);
}

void HazardChecker::record_shuffle_source(int dest_lane, int src_lane,
                                          const std::source_location& site)
{
    (void)dest_lane; // per-lane occurrences aggregate by count
    record(HazardKind::kShuffleInactiveSource, site, nullptr, {}, src_lane,
           warp_, -1);
}

void HazardChecker::record_vote_predicate(LaneMask pred, LaneMask active,
                                          const std::source_location& site)
{
    record(HazardKind::kVoteInactivePredicate, site, nullptr, {},
           static_cast<std::int64_t>(pred & ~active), warp_, -1);
}

void HazardChecker::merge(const HazardChecker& o)
{
    for (const auto& [key, oa] : o.findings_) {
        Accum& a = findings_[key];
        const bool fresh = a.count == 0;
        a.count += oa.count;
        const auto cand =
            std::tuple(oa.first_block, oa.detail, oa.warp, oa.other_warp);
        if (fresh ||
            cand < std::tuple(a.first_block, a.detail, a.warp, a.other_warp)) {
            a.first_block = oa.first_block;
            a.detail = oa.detail;
            a.warp = oa.warp;
            a.other_warp = oa.other_warp;
        }
    }
}

HazardReport HazardChecker::build_report() const
{
    HazardReport r;
    r.hazards.reserve(findings_.size());
    for (const auto& [key, a] : findings_) { // map order = deterministic
        Hazard h;
        h.kind = key.kind;
        h.site = key.site;
        h.other_site = key.other_site;
        h.note = key.note;
        h.count = a.count;
        h.first_block = a.first_block;
        h.detail = a.detail;
        h.warp = a.warp;
        h.other_warp = a.other_warp;
        r.hazards.push_back(std::move(h));
    }
    return r;
}

std::uint64_t total_hazards(std::span<const LaunchStats> ls)
{
    std::uint64_t n = 0;
    for (const LaunchStats& l : ls)
        if (l.hazards)
            n += l.hazards->total();
    return n;
}

void write_hazard_json(std::ostream& os, std::span<const LaunchStats> ls)
{
    JsonWriter j(os);
    j.begin_object();
    j.key("schema"), j.value("satgpu-hazard-v1");
    j.key("launches");
    j.begin_array();
    for (const LaunchStats& l : ls) {
        j.begin_object();
        j.key("kernel"), j.value(l.info.name);
        j.key("checked"), j.value(l.hazards != nullptr);
        if (l.hazards) {
            j.key("hazard_count"), j.value(l.hazards->total());
            j.key("hazards");
            j.begin_array();
            for (const Hazard& h : l.hazards->hazards) {
                j.begin_object();
                j.key("kind"), j.value(to_string(h.kind));
                j.key("site"), j.value(h.site);
                if (!h.other_site.empty())
                    j.key("other_site"), j.value(h.other_site);
                if (!h.note.empty())
                    j.key("allocation"), j.value(h.note);
                j.key("count"), j.value(h.count);
                j.key("first_block"), j.value(h.first_block);
                j.key("detail"), j.value(h.detail);
                j.key("warp"), j.value(h.warp);
                j.key("other_warp"), j.value(h.other_warp);
                j.end_object();
            }
            j.end_array();
        }
        j.end_object();
    }
    j.end_array();
    j.end_object();
    os << '\n';
}

} // namespace satgpu::simt
