// Warp vote functions (CUDA __ballot_sync / __any_sync / __all_sync) and
// mask utilities.  Not needed by the paper's SAT kernels themselves, but
// part of any usable warp-level substrate (and used by the histogram and
// transform extensions).
//
// On hardware the predicate contribution of a thread outside the sync
// mask is undefined; here the result is deterministic (`pred & active`),
// but when a HazardChecker is installed (Engine::Options::check) a
// predicate with bits outside `active` is flagged as a
// vote-inactive-predicate hazard at the call's file:line.
#pragma once

#include "simt/hazard_checker.hpp"
#include "simt/lane_vec.hpp"

#include <source_location>

namespace satgpu::simt {

namespace detail {
inline void check_vote_mask(LaneMask pred, LaneMask active,
                            const std::source_location& site)
{
    if ((pred & ~active) != 0)
        if (HazardChecker* hc = current_hazard_checker())
            hc->record_vote_predicate(pred, active, site);
}
} // namespace detail

/// __ballot_sync: one bit per active lane whose predicate is true.
[[nodiscard]] inline LaneMask ballot(LaneMask pred,
                                     LaneMask active = kFullMask,
                                     std::source_location site = SATGPU_SITE)
{
    detail::check_vote_mask(pred, active, site);
    return pred & active;
}

/// __any_sync.
[[nodiscard]] inline bool any(LaneMask pred, LaneMask active = kFullMask,
                              std::source_location site = SATGPU_SITE)
{
    detail::check_vote_mask(pred, active, site);
    return (pred & active) != 0;
}

/// __all_sync.
[[nodiscard]] inline bool all(LaneMask pred, LaneMask active = kFullMask,
                              std::source_location site = SATGPU_SITE)
{
    detail::check_vote_mask(pred, active, site);
    return (pred & active) == active;
}

/// Lowest-set-lane of a mask (CUDA __ffs(mask)-1 idiom); -1 if empty.
[[nodiscard]] inline int first_lane(LaneMask m) noexcept
{
    return m == 0 ? -1 : std::countr_zero(m);
}

/// Predicate vector -> mask, applied lane-wise to a LaneVec<bool>-ish
/// comparison that produced per-lane truth values.
template <typename T>
[[nodiscard]] LaneMask mask_of_nonzero(const LaneVec<T>& v) noexcept
{
    LaneMask m = 0;
    for (int l = 0; l < kWarpSize; ++l)
        if (v.get(l) != T{})
            m |= (1u << l);
    return m;
}

} // namespace satgpu::simt
