// Block-scoped shared (scratchpad) memory with bank-conflict accounting.
//
// A SharedMemory arena belongs to one thread block.  Kernels obtain typed
// views with `alloc<T>(name, count)`; the name makes the allocation idempotent
// across the block's warps, mirroring CUDA's one-`__shared__`-array-per-block
// semantics even though every warp coroutine executes the declaration.
// Re-declaring a name with a different extent OR a different element type
// aborts (the latter would silently type-pun the arena).
//
// Every warp-wide load/store is analyzed for bank conflicts
// (simt/access_analysis.hpp) and reported to the active PerfCounters sink,
// which is how the simulator observes the paper's central claim that the
// 32x33 padded layout (Alg. 5 line 2) is conflict free while a 32x32 layout
// serializes 32-way on column access.  When a HazardChecker is installed
// (Engine::Options::check), every active lane's access also feeds the
// per-element shadow state behind the racecheck-style hazard reports.
#pragma once

#include "core/check.hpp"
#include "simt/access_analysis.hpp"
#include "simt/hazard_checker.hpp"
#include "simt/lane_vec.hpp"
#include "simt/profiler.hpp"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <map>
#include <source_location>
#include <string>
#include <string_view>
#include <typeindex>
#include <typeinfo>
#include <vector>

namespace satgpu::simt {

template <typename T>
class SmemView;

class SharedMemory {
public:
    explicit SharedMemory(std::int64_t capacity_bytes)
        : arena_(static_cast<std::size_t>(capacity_bytes))
    {
    }

    /// Named idempotent allocation: the first call allocates `count` elements
    /// of T; subsequent calls with the same name return the same storage
    /// (and must request the same element type and extent).
    template <typename T>
    [[nodiscard]] SmemView<T> alloc(std::string_view name, std::int64_t count);

    [[nodiscard]] std::int64_t bytes_used() const noexcept { return used_; }
    [[nodiscard]] std::int64_t capacity() const noexcept
    {
        return static_cast<std::int64_t>(arena_.size());
    }

private:
    struct Allocation {
        std::int64_t offset;
        std::int64_t bytes;
        std::int64_t count;   // element count of the declaring alloc<T>
        std::type_index type; // element type of the declaring alloc<T>
    };

    [[nodiscard]] const std::pair<const std::string, Allocation>&
    allocate_named(std::string_view name, std::int64_t bytes,
                   std::int64_t count, std::int64_t alignment,
                   std::type_index type)
    {
        if (auto it = named_.find(name); it != named_.end()) {
            SATGPU_CHECK(it->second.type == type,
                         "shared-memory allocation re-declared with a "
                         "different element type");
            SATGPU_CHECK(it->second.bytes == bytes &&
                             it->second.count == count,
                         "shared-memory allocation re-declared with a "
                         "different extent");
            return *it;
        }
        // At least the element's own alignment (so SmemView::base()'s
        // reinterpret_cast is valid for over-aligned types), and at least 8
        // so the historical layout -- which the bank-conflict goldens
        // depend on -- is unchanged for every alignof(T) <= 8 type.
        const std::int64_t align = std::max<std::int64_t>(alignment, 8);
        const std::int64_t offset = (used_ + align - 1) / align * align;
        SATGPU_CHECK(offset + bytes <= capacity(),
                     "shared memory capacity exceeded");
        used_ = offset + bytes;
        const auto [it, inserted] = named_.emplace(
            std::string(name), Allocation{offset, bytes, count, type});
        return *it;
    }

    template <typename T>
    friend class SmemView;

    std::vector<std::byte> arena_;
    std::int64_t used_ = 0;
    std::map<std::string, Allocation, std::less<>> named_;
};

template <typename T>
class SmemView {
public:
    SmemView() = default;

    [[nodiscard]] std::int64_t size() const noexcept { return count_; }

    /// Warp-wide store: lane l writes val[l] at element index idx[l].
    /// `site` defaults to the caller's location; the profiler's
    /// bank-conflict hotspot table and the hazard checker's reports are
    /// keyed by it.
    void store(const LaneVec<std::int64_t>& idx, const LaneVec<T>& val,
               LaneMask active = kFullMask,
               std::source_location site = SATGPU_SITE)
    {
        T* const b = base();
        HazardChecker* const hc = current_hazard_checker();
        if (current_counters() == nullptr && hc == nullptr) {
            // Uninstrumented fast path (the native backend's fresh worker
            // threads): only the bounds-checked data movement.
            for (int l = 0; l < kWarpSize; ++l) {
                if (!lane_active(active, l))
                    continue;
                const std::int64_t i = idx.get(l);
                SATGPU_CHECK(i >= 0 && i < count_,
                             "smem store out of bounds");
                b[i] = val.get(l);
            }
            return;
        }
        ByteAddrs addrs{};
        for (int l = 0; l < kWarpSize; ++l) {
            if (!lane_active(active, l))
                continue;
            const std::int64_t i = idx.get(l);
            SATGPU_CHECK(i >= 0 && i < count_, "smem store out of bounds");
            b[i] = val.get(l);
            const std::int64_t byte_off =
                base_offset_ + i * static_cast<std::int64_t>(sizeof(T));
            addrs[static_cast<std::size_t>(l)] = byte_off;
            if (hc)
                hc->record_smem_access(/*is_store=*/true, byte_off, name_,
                                       site);
        }
        if (PerfCounters* c = current_counters()) {
            const auto passes = static_cast<std::uint64_t>(
                smem_conflict_passes(addrs, active, sizeof(T)));
            const auto bytes = static_cast<std::uint64_t>(
                                   active_lane_count(active)) *
                               sizeof(T);
            c->smem_st_req += 1;
            c->smem_st_trans += passes;
            c->smem_bytes_st += bytes;
            if (Profiler* p = current_profiler())
                p->record_smem(site, /*is_store=*/true, passes, bytes);
        }
    }

    /// Warp-wide load: lane l reads element idx[l]; inactive lanes get T{}.
    [[nodiscard]] LaneVec<T> load(const LaneVec<std::int64_t>& idx,
                                  LaneMask active = kFullMask,
                                  std::source_location site = SATGPU_SITE)
        const
    {
        LaneVec<T> r{};
        const T* const b = base();
        HazardChecker* const hc = current_hazard_checker();
        if (current_counters() == nullptr && hc == nullptr) {
            // Uninstrumented fast path; see store().
            for (int l = 0; l < kWarpSize; ++l) {
                if (!lane_active(active, l))
                    continue;
                const std::int64_t i = idx.get(l);
                SATGPU_CHECK(i >= 0 && i < count_, "smem load out of bounds");
                r.set(l, b[i]);
            }
            return r;
        }
        ByteAddrs addrs{};
        for (int l = 0; l < kWarpSize; ++l) {
            if (!lane_active(active, l))
                continue;
            const std::int64_t i = idx.get(l);
            SATGPU_CHECK(i >= 0 && i < count_, "smem load out of bounds");
            r.set(l, b[i]);
            const std::int64_t byte_off =
                base_offset_ + i * static_cast<std::int64_t>(sizeof(T));
            addrs[static_cast<std::size_t>(l)] = byte_off;
            if (hc)
                hc->record_smem_access(/*is_store=*/false, byte_off, name_,
                                       site);
        }
        if (PerfCounters* c = current_counters()) {
            const auto passes = static_cast<std::uint64_t>(
                smem_conflict_passes(addrs, active, sizeof(T)));
            const auto bytes = static_cast<std::uint64_t>(
                                   active_lane_count(active)) *
                               sizeof(T);
            c->smem_ld_req += 1;
            c->smem_ld_trans += passes;
            c->smem_bytes_ld += bytes;
            if (Profiler* p = current_profiler())
                p->record_smem(site, /*is_store=*/false, passes, bytes);
        }
        return r;
    }

private:
    friend class SharedMemory;

    SmemView(SharedMemory* owner, std::int64_t offset, std::int64_t count,
             std::string_view name)
        : owner_(owner), base_offset_(offset), count_(count), name_(name)
    {
    }

    [[nodiscard]] T* base() const noexcept
    {
        SATGPU_EXPECTS(owner_ != nullptr);
        std::byte* const p = owner_->arena_.data() + base_offset_;
        SATGPU_EXPECTS(reinterpret_cast<std::uintptr_t>(p) % alignof(T) == 0);
        return reinterpret_cast<T*>(p);
    }

    SharedMemory* owner_ = nullptr;
    std::int64_t base_offset_ = 0;
    std::int64_t count_ = 0;
    std::string_view name_; // points at the owner's allocation-map key
};

template <typename T>
SmemView<T> SharedMemory::alloc(std::string_view name, std::int64_t count)
{
    SATGPU_EXPECTS(count >= 0);
    const auto& [stored_name, a] = allocate_named(
        name, count * static_cast<std::int64_t>(sizeof(T)), count,
        static_cast<std::int64_t>(alignof(T)), std::type_index(typeid(T)));
    return SmemView<T>(this, a.offset, count, stored_name);
}

} // namespace satgpu::simt
