// Block-scoped shared (scratchpad) memory with bank-conflict accounting.
//
// A SharedMemory arena belongs to one thread block.  Kernels obtain typed
// views with `alloc<T>(name, count)`; the name makes the allocation idempotent
// across the block's warps, mirroring CUDA's one-`__shared__`-array-per-block
// semantics even though every warp coroutine executes the declaration.
//
// Every warp-wide load/store is analyzed for bank conflicts
// (simt/access_analysis.hpp) and reported to the active PerfCounters sink,
// which is how the simulator observes the paper's central claim that the
// 32x33 padded layout (Alg. 5 line 2) is conflict free while a 32x32 layout
// serializes 32-way on column access.
#pragma once

#include "core/check.hpp"
#include "simt/access_analysis.hpp"
#include "simt/lane_vec.hpp"
#include "simt/profiler.hpp"

#include <cstddef>
#include <map>
#include <source_location>
#include <string>
#include <string_view>
#include <vector>

namespace satgpu::simt {

template <typename T>
class SmemView;

class SharedMemory {
public:
    explicit SharedMemory(std::int64_t capacity_bytes)
        : arena_(static_cast<std::size_t>(capacity_bytes))
    {
    }

    /// Named idempotent allocation: the first call allocates `count` elements
    /// of T; subsequent calls with the same name return the same storage
    /// (and must request the same extent).
    template <typename T>
    [[nodiscard]] SmemView<T> alloc(std::string_view name, std::int64_t count);

    [[nodiscard]] std::int64_t bytes_used() const noexcept { return used_; }
    [[nodiscard]] std::int64_t capacity() const noexcept
    {
        return static_cast<std::int64_t>(arena_.size());
    }

private:
    struct Allocation {
        std::int64_t offset;
        std::int64_t bytes;
    };

    [[nodiscard]] Allocation allocate_named(std::string_view name,
                                            std::int64_t bytes)
    {
        if (auto it = named_.find(name); it != named_.end()) {
            SATGPU_CHECK(it->second.bytes == bytes,
                         "shared-memory allocation re-declared with a "
                         "different extent");
            return it->second;
        }
        constexpr std::int64_t align = 8;
        const std::int64_t offset = (used_ + align - 1) / align * align;
        SATGPU_CHECK(offset + bytes <= capacity(),
                     "shared memory capacity exceeded");
        used_ = offset + bytes;
        Allocation a{offset, bytes};
        named_.emplace(std::string(name), a);
        return a;
    }

    template <typename T>
    friend class SmemView;

    std::vector<std::byte> arena_;
    std::int64_t used_ = 0;
    std::map<std::string, Allocation, std::less<>> named_;
};

template <typename T>
class SmemView {
public:
    SmemView() = default;

    [[nodiscard]] std::int64_t size() const noexcept { return count_; }

    /// Warp-wide store: lane l writes val[l] at element index idx[l].
    /// `site` defaults to the caller's location; the profiler's
    /// bank-conflict hotspot table is keyed by it.
    void store(const LaneVec<std::int64_t>& idx, const LaneVec<T>& val,
               LaneMask active = kFullMask,
               std::source_location site = SATGPU_SITE)
    {
        ByteAddrs addrs{};
        for (int l = 0; l < kWarpSize; ++l) {
            if (!lane_active(active, l))
                continue;
            const std::int64_t i = idx.get(l);
            SATGPU_CHECK(i >= 0 && i < count_, "smem store out of bounds");
            base()[i] = val.get(l);
            addrs[static_cast<std::size_t>(l)] =
                base_offset_ + i * static_cast<std::int64_t>(sizeof(T));
        }
        if (PerfCounters* c = current_counters()) {
            const auto passes = static_cast<std::uint64_t>(
                smem_conflict_passes(addrs, active, sizeof(T)));
            const auto bytes = static_cast<std::uint64_t>(
                                   active_lane_count(active)) *
                               sizeof(T);
            c->smem_st_req += 1;
            c->smem_st_trans += passes;
            c->smem_bytes_st += bytes;
            if (Profiler* p = current_profiler())
                p->record_smem(site, /*is_store=*/true, passes, bytes);
        }
    }

    /// Warp-wide load: lane l reads element idx[l]; inactive lanes get T{}.
    [[nodiscard]] LaneVec<T> load(const LaneVec<std::int64_t>& idx,
                                  LaneMask active = kFullMask,
                                  std::source_location site = SATGPU_SITE)
        const
    {
        LaneVec<T> r{};
        ByteAddrs addrs{};
        for (int l = 0; l < kWarpSize; ++l) {
            if (!lane_active(active, l))
                continue;
            const std::int64_t i = idx.get(l);
            SATGPU_CHECK(i >= 0 && i < count_, "smem load out of bounds");
            r.set(l, base()[i]);
            addrs[static_cast<std::size_t>(l)] =
                base_offset_ + i * static_cast<std::int64_t>(sizeof(T));
        }
        if (PerfCounters* c = current_counters()) {
            const auto passes = static_cast<std::uint64_t>(
                smem_conflict_passes(addrs, active, sizeof(T)));
            const auto bytes = static_cast<std::uint64_t>(
                                   active_lane_count(active)) *
                               sizeof(T);
            c->smem_ld_req += 1;
            c->smem_ld_trans += passes;
            c->smem_bytes_ld += bytes;
            if (Profiler* p = current_profiler())
                p->record_smem(site, /*is_store=*/false, passes, bytes);
        }
        return r;
    }

private:
    friend class SharedMemory;

    SmemView(SharedMemory* owner, std::int64_t offset, std::int64_t count)
        : owner_(owner), base_offset_(offset), count_(count)
    {
    }

    [[nodiscard]] T* base() const noexcept
    {
        return reinterpret_cast<T*>(owner_->arena_.data() + base_offset_);
    }

    SharedMemory* owner_ = nullptr;
    std::int64_t base_offset_ = 0;
    std::int64_t count_ = 0;
};

template <typename T>
SmemView<T> SharedMemory::alloc(std::string_view name, std::int64_t count)
{
    SATGPU_EXPECTS(count >= 0);
    const auto a = allocate_named(
        name, count * static_cast<std::int64_t>(sizeof(T)));
    return SmemView<T>(this, a.offset, count);
}

} // namespace satgpu::simt
