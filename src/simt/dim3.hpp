// Grid/block geometry and kernel launch descriptors, mirroring CUDA's
// dim3 / <<<grid, block>>> vocabulary so the paper's launch configurations
// (Secs. IV-B, IV-C and Table II) transcribe directly.
#pragma once

#include "core/check.hpp"

#include <cstdint>
#include <string>

namespace satgpu::simt {

inline constexpr int kWarpSize = 32; // fixed across all Nvidia generations

struct Dim3 {
    std::int64_t x = 1;
    std::int64_t y = 1;
    std::int64_t z = 1;

    [[nodiscard]] std::int64_t count() const noexcept { return x * y * z; }

    friend constexpr bool operator==(Dim3, Dim3) = default;
};

struct LaunchConfig {
    Dim3 grid;
    Dim3 block;

    [[nodiscard]] std::int64_t threads_per_block() const noexcept
    {
        return block.count();
    }
    [[nodiscard]] std::int64_t warps_per_block() const
    {
        const std::int64_t t = threads_per_block();
        SATGPU_EXPECTS(t > 0 && t % kWarpSize == 0);
        return t / kWarpSize;
    }
    [[nodiscard]] std::int64_t total_blocks() const noexcept
    {
        return grid.count();
    }
    [[nodiscard]] std::int64_t total_warps() const
    {
        return total_blocks() * warps_per_block();
    }
};

/// Static resource footprint of a kernel, the quantities the paper reports
/// for NPP in Table II and feeds into the occupancy model (Eq. 8).
struct KernelInfo {
    std::string name;
    int regs_per_thread = 32;
    std::int64_t static_smem_bytes = 0;
};

} // namespace satgpu::simt
