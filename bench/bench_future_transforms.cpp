// Future-work bench (paper Sec. VII): BRLT applied beyond the SAT.
//
//  * 2-D Haar DWT: the BRLT-fused kernel does the pair butterflies
//    intra-thread -- ZERO shuffles -- versus a shuffle-butterfly variant
//    that exchanges neighbours with shfl_xor and permutes lanes for the
//    [low|high] packing.
//  * 2-D recursive filter (Nehab et al. [9]): affine warp scans along rows
//    vs the intra-thread serial recurrence along columns, showing the same
//    serial-beats-parallel communication profile as the SAT kernels.
#include "bench_common.hpp"
#include "core/random_fill.hpp"
#include "transforms/haar_dwt.hpp"
#include "transforms/recursive_filter.hpp"

#include <iostream>

namespace satgpu::simt::detail {
// Local helper used by the shuffle-variant below.
inline void count_shfl_n(int n)
{
    if (PerfCounters* c = current_counters())
        c->warp_shfl += static_cast<std::uint64_t>(n);
}
} // namespace satgpu::simt::detail

namespace {

using namespace satgpu;

/// Shuffle-butterfly Haar row pass (no BRLT): per register row, exchange
/// neighbour lanes, combine, and pack via index shuffles.  Row-major
/// output; a separate pass covers columns in registers.  Used only for its
/// event profile.
template <typename T>
simt::KernelTask haar_rows_shfl_warp(simt::WarpCtx& w,
                                     const simt::DeviceBuffer<T>& in,
                                     std::int64_t height, std::int64_t width,
                                     simt::DeviceBuffer<T>& out)
{
    using simt::kWarpSize;
    using simt::LaneVec;
    const std::int64_t row =
        w.block_idx().y * w.warps_per_block() + w.warp_id();
    if (row >= height)
        co_return;
    const auto lane = LaneVec<std::int64_t>::lane_index();
    const simt::LaneMask low_half = 0x0000ffffu;

    for (std::int64_t c0 = 0; c0 < width; c0 += kWarpSize) {
        const auto m = sat::cols_in_range(c0, width);
        auto v = in.load(lane + (row * width + c0), m);
        // Butterfly with the xor-neighbour.
        const auto partner = simt::shfl_xor(v, 1);
        const auto sum = simt::vadd(v, partner);
        LaneVec<T> diff = LaneVec<T>::zip(
            v, partner, [](T a, T b) { return static_cast<T>(a - b); });
        simt::detail::count_adds(kWarpSize);
        // Even lanes hold sums, odd lanes hold (negated-order) diffs; pack
        // [low | high] with two index shuffles.
        LaneVec<T> packed{};
        for (int l = 0; l < kWarpSize / 2; ++l) {
            packed.set(l, sum.get(2 * l));
            packed.set(kWarpSize / 2 + l, diff.get(2 * l));
        }
        simt::detail::count_shfl_n(2); // the two permutations
        // Low halves go to c0/2, high halves to width/2 + c0/2.
        const auto lo_idx = lane + (row * width + c0 / 2);
        const auto hi_idx =
            lane - std::int64_t{kWarpSize / 2} +
            (row * width + width / 2 + c0 / 2);
        out.store(lo_idx, packed, m & low_half);
        out.store(hi_idx, packed, m & ~low_half);
    }
}

} // namespace

int main()
{
    const auto& gpu = model::tesla_p100();
    constexpr std::int64_t kN = 1024;

    Matrix<i32> img(kN, kN);
    fill_random(img, 9);

    std::cout << "Future work (Sec. VII): BRLT beyond the SAT, on "
              << gpu.name << ", " << kN / 1024 << "k x " << kN / 1024
              << "k\n\n-- 2-D Haar DWT --\n\n";

    simt::Engine e1;
    const auto brlt = transforms::haar_dwt_2d(e1, img);

    simt::Engine e2;
    auto in = simt::DeviceBuffer<i32>::from_matrix(img);
    simt::DeviceBuffer<i32> mid(kN * kN);
    const auto shfl_pass = e2.launch(
        {"haar_rows_shfl", 24, 0},
        {{1, satgpu::ceil_div(kN, 8), 1}, {8 * simt::kWarpSize, 1, 1}},
        [&](simt::WarpCtx& w) {
            return haar_rows_shfl_warp<i32>(w, in, kN, kN, mid);
        });

    TablePrinter t({"variant", "warp shuffles", "smem trans", "lane adds",
                    "est. time/pass (us)"});
    const auto& b0 = brlt.launches[0];
    t.add_row({"BRLT-fused row pass",
               TablePrinter::fmt_int(static_cast<std::int64_t>(
                   b0.counters.warp_shfl)),
               TablePrinter::fmt_int(static_cast<std::int64_t>(
                   b0.counters.smem_trans())),
               TablePrinter::fmt_int(static_cast<std::int64_t>(
                   b0.counters.lane_add)),
               TablePrinter::fmt(
                   model::estimate_kernel_time(gpu, b0).total_us, 1)});
    t.add_row({"shuffle-butterfly row pass",
               TablePrinter::fmt_int(static_cast<std::int64_t>(
                   shfl_pass.counters.warp_shfl)),
               TablePrinter::fmt_int(static_cast<std::int64_t>(
                   shfl_pass.counters.smem_trans())),
               TablePrinter::fmt_int(static_cast<std::int64_t>(
                   shfl_pass.counters.lane_add)),
               TablePrinter::fmt(
                   model::estimate_kernel_time(gpu, shfl_pass).total_us,
                   1)});
    t.print(std::cout);

    std::cout << "\n-- 2-D recursive filter (y = x + 0.8*y_prev) --\n\n";
    Matrix<f32> fimg(kN, kN);
    fill_random(fimg, 10);
    simt::Engine e3;
    const auto iir = transforms::recursive_filter_2d(e3, fimg, 0.8f);
    TablePrinter t2({"kernel", "warp shuffles", "lane adds", "lane muls",
                     "est. time (us)"});
    for (const auto& l : iir.launches)
        t2.add_row({l.info.name,
                    TablePrinter::fmt_int(static_cast<std::int64_t>(
                        l.counters.warp_shfl)),
                    TablePrinter::fmt_int(static_cast<std::int64_t>(
                        l.counters.lane_add)),
                    TablePrinter::fmt_int(static_cast<std::int64_t>(
                        l.counters.lane_mul)),
                    TablePrinter::fmt(
                        model::estimate_kernel_time(gpu, l).total_us, 1)});
    t2.print(std::cout);
    std::cout << "\nThe column kernel's intra-thread serial recurrence uses "
                 "zero shuffles --\nthe same communication profile that "
                 "makes BRLT-ScanRow the fastest SAT.\n";
    return 0;
}
