// Ablation: BRLT vs the explicit global-memory transpose it replaces.
//
// Sec. IV-A: "The original scan-transpose-scan SAT algorithm saves the row
// scan result to global memory and executes a transposing operation on
// global memory explicitly.  In contrary... we use register cache...  and
// apply BRLT" -- i.e. the transposes of Bilgic et al. [17] are folded into
// the scan kernels for free.  This bench compares ScanRow-BRLT (2 fused
// kernels) against ScanTransposeScan (scan, transpose, scan, transpose)
// on global-memory traffic, kernel count and estimated time.
#include "bench_common.hpp"

#include <iostream>

int main()
{
    using namespace satgpu;
    const auto& gpu = model::tesla_p100();
    const auto dt = make_pair_of<f32, f32>();
    sat::Runtime rt(bench::bench_engine_options());
    model::CostModel& cm = rt.cost_model();

    std::cout << "Ablation: fused BRLT transpose vs explicit gmem "
                 "transpose, 32f32f on " << gpu.name << "\n\n";
    TablePrinter t({"size", "ScanRow-BRLT (us)", "ScanTransposeScan (us)",
                    "fused gmem MB", "explicit gmem MB", "kernels",
                    "slowdown"});
    for (std::int64_t k = 1; k <= 8; k *= 2) {
        const std::int64_t n = k * 1024;
        const auto fused =
            cm.predict(sat::Algorithm::kScanRowBrlt, dt, n, n);
        const auto expl =
            cm.predict(sat::Algorithm::kScanTransposeScan, dt, n, n);
        const double t_fused = model::estimate_total_us(gpu, fused);
        const double t_expl = model::estimate_total_us(gpu, expl);
        auto mbytes = [](const std::vector<simt::LaunchStats>& ls) {
            std::uint64_t b = 0;
            for (const auto& l : ls)
                b += l.counters.gmem_bytes();
            return static_cast<double>(b) / 1e6;
        };
        t.add_row({std::to_string(k) + "k", TablePrinter::fmt(t_fused, 1),
                   TablePrinter::fmt(t_expl, 1),
                   TablePrinter::fmt(mbytes(fused), 0),
                   TablePrinter::fmt(mbytes(expl), 0),
                   "2 vs 4",
                   TablePrinter::fmt(t_expl / t_fused, 2) + "x"});
    }
    t.print(std::cout);
    std::cout << "\nThe explicit pipeline moves the matrix through global "
                 "memory twice more\n(2x the bytes) and pays two extra "
                 "kernel launches -- the traffic BRLT\nfolds into the scan "
                 "kernels' existing loads and stores.\n";
    return 0;
}
