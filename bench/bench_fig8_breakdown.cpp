// Figure 8: performance breakdown of the 32f32f SAT for 1k..4k inputs --
// per-kernel execution time of the 1st and 2nd scan of each algorithm
// (BRLT-ScanRow and ScanRow-BRLT run the same kernel twice; ScanRowColumn
// runs ScanRow then ScanColumn), plus the Sec. VI-D model-verification
// relations evaluated on the numbers.
#include "bench_common.hpp"

#include <iostream>

int main()
{
    using namespace satgpu;
    using sat::Algorithm;
    const auto& gpu = model::tesla_p100();
    const auto dt = make_pair_of<f32, f32>();
    model::CostModel cm;

    std::cout << "Figure 8: per-kernel breakdown, 32f32f on "
              << gpu.name << " (us)\n\n";
    TablePrinter t({"size", "BRLT-ScanRow 1st", "BRLT-ScanRow 2nd",
                    "ScanRow-BRLT 1st", "ScanRow-BRLT 2nd", "ScanRow",
                    "ScanColumn"});

    struct Row {
        std::int64_t n;
        double brlt1, brlt2, srb1, srb2, sr, sc;
    };
    std::vector<Row> rows;
    for (std::int64_t k = 1; k <= 4; ++k) {
        const std::int64_t n = k * 1024;
        const auto brlt = cm.predict(Algorithm::kBrltScanRow, dt, n, n);
        const auto srb = cm.predict(Algorithm::kScanRowBrlt, dt, n, n);
        const auto src = cm.predict(Algorithm::kScanRowColumn, dt, n, n);
        const auto us = [&](const simt::LaunchStats& l) {
            return model::estimate_kernel_time(gpu, l).total_us;
        };
        rows.push_back({n, us(brlt[0]), us(brlt[1]), us(srb[0]), us(srb[1]),
                        us(src[0]), us(src[1])});
        t.add_row({std::to_string(k) + "k", TablePrinter::fmt(rows.back().brlt1, 1),
                   TablePrinter::fmt(rows.back().brlt2, 1),
                   TablePrinter::fmt(rows.back().srb1, 1),
                   TablePrinter::fmt(rows.back().srb2, 1),
                   TablePrinter::fmt(rows.back().sr, 1),
                   TablePrinter::fmt(rows.back().sc, 1)});
    }
    t.print(std::cout);

    std::cout << "\nSec. VI-D model verification (per size):\n";
    TablePrinter v({"size", "(1) T_ScanColumn < T_BRLT-ScanRow",
                    "(2) 2*T_BRLT-ScanRow < T_ScanRow + T_ScanColumn",
                    "(3) T_BRLT-ScanRow <= T_ScanRow-BRLT"});
    for (const auto& r : rows) {
        // Each relation uses the column-direction kernels (the 2nd scans).
        const bool r1 = r.sc < r.brlt2 + 1e-9;
        const bool r2 = r.brlt1 + r.brlt2 < r.sr + r.sc;
        const bool r3 = r.brlt1 + r.brlt2 <= r.srb1 + r.srb2 + 1e-9;
        v.add_row({std::to_string(r.n / 1024) + "k", r1 ? "holds" : "VIOLATED",
                   r2 ? "holds" : "VIOLATED", r3 ? "holds" : "VIOLATED"});
    }
    v.print(std::cout);
    std::cout
        << "\nNote: the paper's item (3) prints T_BRLT-ScanRow > "
           "T_ScanRow-BRLT while\nconcluding the serial scan is MORE "
           "efficient (and elsewhere calls\nBRLT-ScanRow the fastest "
           "algorithm); we reproduce the consistent direction\n"
           "T_BRLT-ScanRow <= T_ScanRow-BRLT and record the erratum in "
           "EXPERIMENTS.md.\n";
    return 0;
}
