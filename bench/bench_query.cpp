// bench_query: device-memory traffic of the fused SAT-consumer pipeline
// (Runtime::plan_query, docs/fused_queries.md) against the classic
// materialize-then-consume baseline, for the 8u -> 32u box filter (r=4,
// 256x256 macro tiles) at 1k and 4k.
//
// Every number is derived from the simulator's LaunchStats byte counters
// or the closed-form model::predict_query_traffic forecast -- no wall
// clock anywhere -- so the `--json` document is byte-identical on every
// machine and BENCH_query.json in the repo root is this program's
// checked-in output, diffed by CI.
//
// The program also ENFORCES the PR's acceptance criteria and exits 1 when
// either fails:
//  * at 4096 x 4096 the fused path must move >= 1.8x fewer device bytes
//    than materialize-then-consume;
//  * at every size, fused, materialized, and the serial query oracle must
//    agree bit for bit.
#include "bench_common.hpp"

#include <iostream>

int main(int argc, char** argv)
{
    using namespace satgpu;
    const auto dt = make_pair_of<u8, u32>();
    const sat::QuerySpec query{sat::BoxFilterSpec{4}};
    const sat::TileGeometry tile{256, 256};
    sat::Runtime rt(bench::bench_engine_options());
    const bool json = bench::bench_json_requested(argc, argv);

    struct Row {
        std::int64_t n;
        std::uint64_t fused_bytes, mat_bytes;
        double model_fused, model_mat;
        bool exact;
    };
    std::vector<Row> rows;
    bool ok = true;

    for (const std::int64_t n : {std::int64_t{1024}, std::int64_t{4096}}) {
        const auto image = sat::AnyMatrix::random(dt.in, n, n, /*seed=*/42);
        const auto moved = [](const sat::RuntimeResult& r) {
            std::uint64_t b = 0;
            for (const auto& l : r.launches)
                b += l.counters.gmem_bytes_ld + l.counters.gmem_bytes_st;
            return b;
        };
        const sat::PlanRequest base{.height = n,
                                    .width = n,
                                    .dtypes = dt,
                                    .tile = tile,
                                    .query = query};
        sat::PlanRequest freq = base;
        freq.query_mode = sat::QueryMode::kFused;
        sat::PlanRequest mreq = base;
        mreq.query_mode = sat::QueryMode::kMaterialize;
        const auto fused = rt.plan_query(freq).execute(image);
        const auto mat = rt.plan_query(mreq).execute(image);
        const auto want = rt.query_reference(image, dt.out, query);
        const bool exact = fused.table == want && mat.table == want;

        const auto t = model::predict_query_traffic(query, dt, n, n,
                                                    tile.tile_h,
                                                    tile.tile_w);
        rows.push_back({n, moved(fused), moved(mat), t.fused_bytes,
                        t.materialized_bytes, exact});
        ok = ok && exact;
    }

    const Row& big = rows.back();
    const double ratio = static_cast<double>(big.mat_bytes) /
                         static_cast<double>(big.fused_bytes);
    const bool traffic_ok = ratio >= 1.8;
    ok = ok && traffic_ok;

    if (json) {
        JsonWriter w(std::cout);
        bench::bench_json_prelude(w, "query_traffic");
        w.key("dtype");
        w.value(std::string_view{"8u32u"});
        w.key("query");
        w.value(std::string_view{"box:r=4"});
        w.key("tile");
        w.value(std::string_view{"256x256"});
        w.key("unit");
        w.value(std::string_view{"bytes"});
        w.key("rows");
        w.begin_array();
        for (const Row& r : rows) {
            w.begin_object();
            w.key("size");
            w.value(r.n);
            w.key("fused_bytes");
            w.value(r.fused_bytes);
            w.key("materialized_bytes");
            w.value(r.mat_bytes);
            w.key("ratio");
            w.value(static_cast<double>(r.mat_bytes) /
                    static_cast<double>(r.fused_bytes));
            w.key("model_fused_bytes");
            w.value(r.model_fused);
            w.key("model_materialized_bytes");
            w.value(r.model_mat);
            w.key("bit_exact_vs_oracle");
            w.value(r.exact);
            w.end_object();
        }
        w.end_array();
        w.key("traffic_target");
        w.value(1.8);
        w.key("traffic_target_met");
        w.value(traffic_ok);
        w.end_object();
        std::cout << '\n';
    } else {
        std::cout << "== fused query traffic vs materialize-then-consume "
                     "[8u32u box:r=4, 256x256 tiles] ==\n";
        TablePrinter t({"size", "fused (B/px)", "materialized (B/px)",
                        "ratio", "model fused", "model mat", "bit-exact"});
        for (const Row& r : rows) {
            const double px = static_cast<double>(r.n) *
                              static_cast<double>(r.n);
            t.add_row({std::to_string(r.n / 1024) + "k",
                       TablePrinter::fmt(
                           static_cast<double>(r.fused_bytes) / px, 2),
                       TablePrinter::fmt(
                           static_cast<double>(r.mat_bytes) / px, 2),
                       TablePrinter::fmt(
                           static_cast<double>(r.mat_bytes) /
                               static_cast<double>(r.fused_bytes),
                           2),
                       TablePrinter::fmt(r.model_fused / px, 2),
                       TablePrinter::fmt(r.model_mat / px, 2),
                       r.exact ? "yes" : "NO"});
        }
        t.print(std::cout);
        std::cout << "\n4k traffic ratio " << TablePrinter::fmt(ratio, 2)
                  << "x (target >= 1.8x): "
                  << (traffic_ok ? "met" : "NOT MET") << '\n';
    }

    if (!ok) {
        std::cerr << "bench_query: acceptance criteria failed ("
                  << (traffic_ok ? "outputs not bit-exact"
                                 : "traffic ratio below 1.8x")
                  << ")\n";
        return 1;
    }
    return 0;
}
