// Figure 7: SAT execution time and speedup over OpenCV on Tesla V100,
// sizes 1k..16k.  Same panels as Figure 6 (see bench_fig6_p100.cpp).
#include "bench_common.hpp"

int main()
{
    using namespace satgpu;
    using sat::Algorithm;
    const auto& gpu = model::tesla_v100();
    const auto sizes = bench::paper_sizes();
    sat::Runtime rt(bench::bench_engine_options());

    const std::vector<Algorithm> with_npp{
        Algorithm::kBrltScanRow, Algorithm::kScanRowBrlt,
        Algorithm::kScanRowColumn, Algorithm::kOpencvLike,
        Algorithm::kNppLike};
    const std::vector<Algorithm> no_npp{
        Algorithm::kBrltScanRow, Algorithm::kScanRowBrlt,
        Algorithm::kScanRowColumn, Algorithm::kOpencvLike};

    std::cout << "Figure 7: SAT on Tesla V100 (simulated timing model)\n";
    bench::print_figure_panel(std::cout, rt, gpu,
                              make_pair_of<u8, u32>(), with_npp, sizes,
                              "Fig. 7(a,b) 8u32u");
    bench::print_figure_panel(std::cout, rt, gpu,
                              make_pair_of<f32, f32>(), no_npp, sizes,
                              "Fig. 7(c,d) 32f32f");
    bench::print_figure_panel(std::cout, rt, gpu,
                              make_pair_of<f64, f64>(), no_npp, sizes,
                              "Fig. 7(e,f) 64f64f");
    return 0;
}
