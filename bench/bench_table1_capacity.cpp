// Table I: comparison between shared memory and register files per SM for
// Tesla M40 / P100 / V100, plus the capacity ratio the paper's argument
// rests on (register files >= 2.7x shared memory).
#include "core/table_printer.hpp"
#include "model/gpu_specs.hpp"

#include <iostream>

int main()
{
    using namespace satgpu;

    std::cout << "Table I: shared memory vs register files\n\n";
    TablePrinter t({"Tesla GPU", "Shared Memory/SM (KB)", "Registers/SM (KB)",
                    "SMs", "Reg/Smem ratio"});
    for (const auto& g : model::all_specs()) {
        t.add_row({std::string(g.name),
                   TablePrinter::fmt_int(g.smem_per_sm_kb),
                   TablePrinter::fmt_int(g.regfile_per_sm_kb),
                   TablePrinter::fmt_int(g.sm_count),
                   TablePrinter::fmt(static_cast<double>(g.regfile_per_sm_kb) /
                                         g.smem_per_sm_kb,
                                     2)});
    }
    t.print(std::cout);
    std::cout << "\nPaper's observation: the register file is more than "
                 "256/96 = 2.67x larger\nthan shared memory on the newest "
                 "part, and the gap grows with SM count.\n";
    return 0;
}
