// Figure 6: SAT execution time and speedup over OpenCV on Tesla P100,
// sizes 1k..16k.
//
// Panels (matching the paper's layout):
//   (a,b) 8u -> 32-bit  : ours vs OpenCV (8u shuffle path) vs NPP
//   (c,d) 32f32f        : ours vs OpenCV generic (NPP has no 32f input)
//   (e,f) 64f64f        : ours vs OpenCV generic
// The "(us)" columns are panel (b)/(d)/(f) execution times; the "speedup"
// columns are panels (a)/(c)/(e) with OpenCV as the baseline.
#include "bench_common.hpp"

int main()
{
    using namespace satgpu;
    using sat::Algorithm;
    const auto& gpu = model::tesla_p100();
    const auto sizes = bench::paper_sizes();
    sat::Runtime rt(bench::bench_engine_options());

    const std::vector<Algorithm> with_npp{
        Algorithm::kBrltScanRow, Algorithm::kScanRowBrlt,
        Algorithm::kScanRowColumn, Algorithm::kOpencvLike,
        Algorithm::kNppLike};
    const std::vector<Algorithm> no_npp{
        Algorithm::kBrltScanRow, Algorithm::kScanRowBrlt,
        Algorithm::kScanRowColumn, Algorithm::kOpencvLike};

    std::cout << "Figure 6: SAT on Tesla P100 (simulated timing model)\n";
    bench::print_figure_panel(std::cout, rt, gpu,
                              make_pair_of<u8, u32>(), with_npp, sizes,
                              "Fig. 6(a,b) 8u32u");
    bench::print_figure_panel(std::cout, rt, gpu,
                              make_pair_of<f32, f32>(), no_npp, sizes,
                              "Fig. 6(c,d) 32f32f");
    bench::print_figure_panel(std::cout, rt, gpu,
                              make_pair_of<f64, f64>(), no_npp, sizes,
                              "Fig. 6(e,f) 64f64f");
    return 0;
}
