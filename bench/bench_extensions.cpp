// Profiles of the library extensions on the simulated GPU: the three-kernel
// device-wide scan, the integral histogram (one SAT per bin), and the
// device-side box filter consuming a SAT.  Not a paper figure; included so
// downstream users can see what these primitives cost on P100-class
// hardware.
#include "bench_common.hpp"
#include "core/random_fill.hpp"
#include "sat/box_filter.hpp"
#include "sat/integral_histogram.hpp"
#include "scan/device_scan.hpp"

#include <iostream>

int main()
{
    using namespace satgpu;
    const auto& gpu = model::tesla_p100();

    std::cout << "-- device_inclusive_scan over N elements (32s) --\n\n";
    TablePrinter t1({"N", "kernels", "gld sectors", "gst sectors",
                     "est. time (us)"});
    for (const std::int64_t n : {std::int64_t{100000}, std::int64_t{1000000}}) {
        simt::DeviceBuffer<i32> in(n, 1), out(n);
        simt::Engine eng({.record_history = false});
        const auto launches = scan::device_inclusive_scan(eng, in, out);
        std::uint64_t gld = 0, gst = 0;
        for (const auto& l : launches) {
            gld += l.counters.gmem_ld_sectors;
            gst += l.counters.gmem_st_sectors;
        }
        t1.add_row({TablePrinter::fmt_int(n),
                    TablePrinter::fmt_int(
                        static_cast<std::int64_t>(launches.size())),
                    TablePrinter::fmt_int(static_cast<std::int64_t>(gld)),
                    TablePrinter::fmt_int(static_cast<std::int64_t>(gst)),
                    TablePrinter::fmt(
                        model::estimate_total_us(gpu, launches), 1)});
    }
    t1.print(std::cout);

    std::cout << "\n-- integral histogram, 512x512 8u image --\n\n";
    Matrix<u8> img(512, 512);
    fill_random(img, 3, u8{0}, u8{255});
    TablePrinter t2({"bins", "kernel launches", "est. build time (us)",
                     "region query cost"});
    for (const int bins : {4, 8, 16}) {
        simt::Engine eng({.record_history = false});
        const auto ih = sat::integral_histogram(eng, img, bins);
        t2.add_row({TablePrinter::fmt_int(bins),
                    TablePrinter::fmt_int(
                        static_cast<std::int64_t>(ih.launches.size())),
                    TablePrinter::fmt(
                        model::estimate_total_us(gpu, ih.launches), 1),
                    std::to_string(4 * bins) + " table lookups"});
    }
    t2.print(std::cout);

    std::cout << "\n-- device box filter from a 1k x 1k SAT --\n\n";
    Matrix<u8> big(1024, 1024);
    fill_random(big, 4, u8{0}, u8{255});
    simt::Engine eng({.record_history = false});
    const auto table =
        sat::compute_sat<u32>(eng, big, {sat::Algorithm::kBrltScanRow});
    TablePrinter t3({"radius", "gld sectors", "est. time (us)"});
    for (const std::int64_t r : {2, 8, 32}) {
        simt::LaunchStats stats;
        (void)sat::box_filter_device(eng, table.table, r, &stats);
        t3.add_row({TablePrinter::fmt_int(r),
                    TablePrinter::fmt_int(static_cast<std::int64_t>(
                        stats.counters.gmem_ld_sectors)),
                    TablePrinter::fmt(
                        model::estimate_kernel_time(gpu, stats).total_us,
                        1)});
    }
    t3.print(std::cout);
    std::cout << "\nBox-filter cost is radius independent (four lookups per "
                 "pixel), the\nSAT's raison d'etre.\n";
    return 0;
}
