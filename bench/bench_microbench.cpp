// Section V-A micro-benchmarks.
//
// The paper extends cudabmk to measure shared-memory, shuffle and addition
// latencies on real silicon.  Without silicon, this bench (a) reports the
// measured parameters our model carries for each GPU together with the
// throughput figures from the programming guide, and (b) runs real
// pointer-chase-style kernels on the SIMULATOR and reports the event counts
// they generate, verifying that a dependent chain of N ops is charged
// exactly N latencies by the timing model.
#include "core/table_printer.hpp"
#include "model/gpu_specs.hpp"
#include "model/timing.hpp"
#include "simt/engine.hpp"
#include "simt/shared_memory.hpp"
#include "simt/shuffle.hpp"

#include <iostream>

namespace {

using namespace satgpu;

/// Dependent-chain kernel: `n` rounds of (smem load -> add -> smem store)
/// in one warp, the simulator analogue of cudabmk's latency probe.
simt::LaunchStats chase_kernel(const char* kind, int n)
{
    simt::Engine eng;
    return eng.launch(
        {"microbench", 16, 256}, {{1, 1, 1}, {32, 1, 1}},
        [&](simt::WarpCtx& w) -> simt::KernelTask {
            auto sm = w.smem_alloc<int>("probe", 64);
            const auto lane = simt::LaneVec<std::int64_t>::lane_index();
            auto v = simt::LaneVec<int>::lane_index();
            sm.store(lane, v);
            for (int i = 0; i < n; ++i) {
                if (std::string_view(kind) == "smem") {
                    v = sm.load(lane);
                    sm.store(lane, v);
                } else if (std::string_view(kind) == "shfl") {
                    v = simt::shfl_xor(v, 1);
                } else {
                    v = simt::vadd(v, v);
                }
            }
            co_return;
        });
}

} // namespace

int main()
{
    std::cout << "Section V-A micro-benchmark parameters\n\n";
    TablePrinter t({"GPU", "smem lat (clk)", "shfl lat (clk/warp)",
                    "add lat (clk)", "shfl thru (op/clk)",
                    "add thru (op/clk)", "smem BW (GB/s)", "DRAM BW (GB/s)"});
    for (const auto& g : model::all_specs())
        t.add_row({std::string(g.name), TablePrinter::fmt_int(g.lat_smem),
                   TablePrinter::fmt_int(g.lat_shfl),
                   TablePrinter::fmt_int(g.lat_add),
                   TablePrinter::fmt_int(g.shfl_lanes_per_clk),
                   TablePrinter::fmt_int(g.add_lanes_per_clk),
                   TablePrinter::fmt(g.smem_gbs, 0),
                   TablePrinter::fmt(g.dram_gbs, 0)});
    t.print(std::cout);
    std::cout << "\nPaper's measurements: smem 36 clk (P100) / 27 clk "
                 "(V100); shuffle 33 / 39\nclk per warp; add 6 / 4 clk; "
                 "throughputs 32 / 64 / 64 op/clk per SM [47];\nsmem "
                 "bandwidth 9519 / 13800 GB/s [55].\n";

    std::cout << "\n-- Simulated dependent-chain probes (1024 rounds, one "
                 "warp) --\n\n";
    TablePrinter probes({"probe", "event counted", "events", "expected"});
    const auto smem = chase_kernel("smem", 1024);
    const auto shfl = chase_kernel("shfl", 1024);
    const auto add = chase_kernel("add", 1024);
    probes.add_row({"smem load+store", "smem transactions",
                    TablePrinter::fmt_int(static_cast<std::int64_t>(
                        smem.counters.smem_trans())),
                    "2049 (1 init + 2 per round)"});
    probes.add_row({"shfl chain", "warp shuffles",
                    TablePrinter::fmt_int(static_cast<std::int64_t>(
                        shfl.counters.warp_shfl)),
                    "1024"});
    probes.add_row({"add chain", "lane adds",
                    TablePrinter::fmt_int(
                        static_cast<std::int64_t>(add.counters.lane_add)),
                    "32768 (32 lanes x 1024)"});
    probes.print(std::cout);

    std::cout << "\nLatency charged by the timing model for the shuffle "
                 "chain on P100: "
              << TablePrinter::fmt(
                     model::estimate_kernel_time(model::tesla_p100(), shfl)
                         .latency_us,
                     3)
              << " us\n(1024 dependent shuffles x 33 clk / 1.5 ILP / 1.328 "
                 "GHz = 22.5 us ideal chain).\n";
    return 0;
}
