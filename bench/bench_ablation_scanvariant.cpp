// Ablation: Kogge-Stone vs Ladner-Fischer warp scans end-to-end
// (Sec. VI-C1: "they achieve nearly the same computing efficiency in our
// implementation" because the SAT is memory-bound).
#include "bench_common.hpp"

#include <iostream>

int main()
{
    using namespace satgpu;
    using scan::WarpScanKind;
    const auto& gpu = model::tesla_p100();
    const auto dt = make_pair_of<f32, f32>();
    sat::Runtime rt(bench::bench_engine_options());

    std::cout << "Ablation: parallel warp-scan network, 32f32f on "
              << gpu.name << " (us)\n\n";
    TablePrinter t({"size", "ScanRow-BRLT KS", "ScanRow-BRLT LF",
                    "ScanRowColumn KS", "ScanRowColumn LF", "max diff"});
    for (std::int64_t k = 1; k <= 8; k *= 2) {
        const std::int64_t n = k * 1024;
        sat::Options ks, lf;
        ks.warp_scan = WarpScanKind::kKoggeStone;
        lf.warp_scan = WarpScanKind::kLadnerFischer;
        const double srb_ks = bench::estimated_us(
            rt, gpu, sat::Algorithm::kScanRowBrlt, dt, n, ks);
        const double srb_lf = bench::estimated_us(
            rt, gpu, sat::Algorithm::kScanRowBrlt, dt, n, lf);
        const double src_ks = bench::estimated_us(
            rt, gpu, sat::Algorithm::kScanRowColumn, dt, n, ks);
        const double src_lf = bench::estimated_us(
            rt, gpu, sat::Algorithm::kScanRowColumn, dt, n, lf);
        const double diff =
            std::max(std::abs(srb_ks - srb_lf) / srb_ks,
                     std::abs(src_ks - src_lf) / src_ks);
        t.add_row({std::to_string(k) + "k", TablePrinter::fmt(srb_ks, 1),
                   TablePrinter::fmt(srb_lf, 1), TablePrinter::fmt(src_ks, 1),
                   TablePrinter::fmt(src_lf, 1),
                   TablePrinter::fmt(diff * 100, 1) + "%"});
    }
    t.print(std::cout);
    std::cout << "\nAs in the paper, the network choice is in the noise: "
                 "the kernels are\nmemory-bound, so LF's fewer adds (2560 vs "
                 "4128 per tile) buy nothing\nend-to-end.\n";
    return 0;
}
