// Shared helpers for the benchmark harness: figure sweeps over the paper's
// size range, speedup computation against the OpenCV baseline, and table
// emission.
#pragma once

#include "core/table_printer.hpp"
#include "model/cost_model.hpp"
#include "model/timing.hpp"
#include "sat/sat.hpp"
#include "simt/engine.hpp"

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

namespace satgpu::bench {

/// Engine options for wall-clock benchmarks: history off (its allocations
/// would pollute the timings), worker count from the SATGPU_THREADS
/// environment variable (0 or unset = one worker per hardware thread;
/// results are identical either way, only wall-clock changes).
[[nodiscard]] inline simt::Engine::Options bench_engine_options()
{
    simt::Engine::Options opt{.record_history = false};
    if (const char* env = std::getenv("SATGPU_THREADS")) {
        const int n = std::atoi(env);
        if (n >= 0)
            opt.num_threads = n;
    }
    return opt;
}

/// The paper evaluates 1k x 1k .. 16k x 16k square matrices (Sec. VI-A).
[[nodiscard]] inline std::vector<std::int64_t> paper_sizes(
    std::int64_t max_k = 16)
{
    std::vector<std::int64_t> s;
    for (std::int64_t k = 1; k <= max_k; ++k)
        s.push_back(k * 1024);
    return s;
}

struct SeriesPoint {
    std::int64_t size = 0;
    double time_us = 0;
    double speedup_vs_opencv = 0;
};

/// Estimated execution time of one algorithm at one size on one GPU.
[[nodiscard]] inline double estimated_us(model::CostModel& cm,
                                         const model::GpuSpec& gpu,
                                         sat::Algorithm algo, DtypePair dt,
                                         std::int64_t n,
                                         const sat::Options& opt = {})
{
    const auto launches = cm.predict(algo, dt, n, n, opt);
    return model::estimate_total_us(gpu, launches);
}

/// One figure panel: execution time + speedup-vs-OpenCV for a set of
/// algorithms over the size sweep.
inline void print_figure_panel(std::ostream& os, const model::GpuSpec& gpu,
                               DtypePair dt,
                               const std::vector<sat::Algorithm>& algos,
                               const std::vector<std::int64_t>& sizes,
                               std::string_view panel_name)
{
    model::CostModel cm;

    os << "\n== " << panel_name << "  [" << gpu.name << ", "
       << pair_name(dt) << "] ==\n";

    std::vector<std::string> headers{"size"};
    for (auto a : algos)
        headers.emplace_back(std::string(sat::to_string(a)) + " (us)");
    for (auto a : algos)
        if (a != sat::Algorithm::kOpencvLike)
            headers.emplace_back(std::string(sat::to_string(a)) +
                                 " speedup");
    TablePrinter table(std::move(headers));

    for (const auto n : sizes) {
        std::vector<double> times;
        times.reserve(algos.size());
        for (auto a : algos)
            times.push_back(estimated_us(cm, gpu, a, dt, n));
        double opencv = 0;
        for (std::size_t i = 0; i < algos.size(); ++i)
            if (algos[i] == sat::Algorithm::kOpencvLike)
                opencv = times[i];

        std::vector<std::string> row{std::to_string(n / 1024) + "k"};
        for (double t : times)
            row.push_back(TablePrinter::fmt(t, 1));
        for (std::size_t i = 0; i < algos.size(); ++i)
            if (algos[i] != sat::Algorithm::kOpencvLike)
                row.push_back(TablePrinter::fmt(opencv / times[i], 2));
        table.add_row(std::move(row));
    }
    table.print(os);
}

} // namespace satgpu::bench
