// Shared helpers for the benchmark harness: figure sweeps over the paper's
// size range, speedup computation against the OpenCV baseline, and table
// emission.
#pragma once

#include "core/json_writer.hpp"
#include "core/table_printer.hpp"
#include "model/cost_model.hpp"
#include "model/timing.hpp"
#include "sat/runtime.hpp"
#include "sat/sat.hpp"
#include "simt/engine.hpp"

#include <algorithm>
#include <charconv>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

namespace satgpu::bench {

/// Engine options for wall-clock benchmarks: history off (its allocations
/// would pollute the timings), worker count from the SATGPU_THREADS
/// environment variable (0 or unset = one worker per hardware thread;
/// results are identical either way, only wall-clock changes).  A malformed
/// value aborts loudly: silently falling back to the default would make a
/// typo'd SATGPU_THREADS=8x benchmark on the wrong worker count.
[[nodiscard]] inline simt::Engine::Options bench_engine_options()
{
    simt::Engine::Options opt{.record_history = false};
    if (const char* env = std::getenv("SATGPU_THREADS")) {
        int n = 0;
        const char* const end = env + std::strlen(env);
        const auto [ptr, ec] = std::from_chars(env, end, n);
        if (ec != std::errc{} || ptr != end || n < 0) {
            std::cerr << "SATGPU_THREADS must be a non-negative integer "
                         "(0 = one worker per hardware thread); got \""
                      << env << "\"\n";
            std::exit(2);
        }
        opt.num_threads = n;
    }
    return opt;
}

/// True when a benchmark should emit its results as a machine-readable
/// JSON document on stdout instead of the human tables: either `--json`
/// on the command line or a non-empty, non-"0" SATGPU_BENCH_JSON in the
/// environment (the latter lets CI flip every bench at once).
[[nodiscard]] inline bool bench_json_requested(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i)
        if (std::string_view(argv[i]) == "--json")
            return true;
    if (const char* env = std::getenv("SATGPU_BENCH_JSON"))
        return env[0] != '\0' && std::string_view(env) != "0";
    return false;
}

/// Open a bench JSON document on `w`: {"schema":"satgpu-bench-v1",
/// "bench":NAME, ...caller payload keys..., then the caller's
/// `end_object()` closes it.  All numbers go through std::to_chars
/// (core/json_writer.hpp), so the bytes are machine independent and
/// checked-in documents diff cleanly in CI.
inline void bench_json_prelude(JsonWriter& w, std::string_view name)
{
    w.begin_object();
    w.key("schema");
    w.value(std::string_view{"satgpu-bench-v1"});
    w.key("bench");
    w.value(name);
}

/// Nearest-rank percentile of an unsorted sample.  Defined behavior on
/// every input (tests/test_metrics.cpp pins each case):
///  * empty sample -> 0;
///  * single sample -> that sample for every p;
///  * unsorted input -> sorted internally (the argument is taken by value,
///    so serving-latency reporters calling this for several p's never
///    perturb each other's view);
///  * p outside [0, 100] (including NaN) -> clamped to the nearest end,
///    so percentile(s, -5) == min and percentile(s, 250) == max.
/// The rank formula round((p/100) * (n-1)) is shared verbatim with
/// obs::Histogram::quantile, which is what lets the histogram-derived
/// quantiles be cross-checked against this function to within one bucket
/// width.
[[nodiscard]] inline double percentile(std::vector<double> sample, double p)
{
    if (sample.empty())
        return 0;
    if (!(p > 0))
        p = 0; // also catches NaN
    p = std::min(p, 100.0);
    std::sort(sample.begin(), sample.end());
    const auto rank = static_cast<std::size_t>(
        (p / 100.0) * static_cast<double>(sample.size() - 1) + 0.5);
    return sample[std::min(rank, sample.size() - 1)];
}

/// The paper evaluates 1k x 1k .. 16k x 16k square matrices (Sec. VI-A).
[[nodiscard]] inline std::vector<std::int64_t> paper_sizes(
    std::int64_t max_k = 16)
{
    std::vector<std::int64_t> s;
    for (std::int64_t k = 1; k <= max_k; ++k)
        s.push_back(k * 1024);
    return s;
}

struct SeriesPoint {
    std::int64_t size = 0;
    double time_us = 0;
    double speedup_vs_opencv = 0;
};

/// Estimated execution time of one algorithm at one size on one GPU,
/// through the runtime's cost model (shared across panels, so the 1k
/// calibration runs happen once per (algorithm, dtype) per process).
[[nodiscard]] inline double estimated_us(sat::Runtime& rt,
                                         const model::GpuSpec& gpu,
                                         sat::Algorithm algo, DtypePair dt,
                                         std::int64_t n,
                                         const sat::Options& opt = {})
{
    return rt.predict_us(algo, dt, n, n, gpu, opt);
}

/// One figure panel: execution time + speedup-vs-OpenCV for a set of
/// algorithms over the size sweep.
inline void print_figure_panel(std::ostream& os, sat::Runtime& rt,
                               const model::GpuSpec& gpu, DtypePair dt,
                               const std::vector<sat::Algorithm>& algos,
                               const std::vector<std::int64_t>& sizes,
                               std::string_view panel_name)
{
    os << "\n== " << panel_name << "  [" << gpu.name << ", "
       << pair_name(dt) << "] ==\n";

    std::vector<std::string> headers{"size"};
    for (auto a : algos)
        headers.emplace_back(std::string(sat::to_string(a)) + " (us)");
    for (auto a : algos)
        if (a != sat::Algorithm::kOpencvLike)
            headers.emplace_back(std::string(sat::to_string(a)) +
                                 " speedup");
    TablePrinter table(std::move(headers));

    for (const auto n : sizes) {
        std::vector<double> times;
        times.reserve(algos.size());
        for (auto a : algos)
            times.push_back(estimated_us(rt, gpu, a, dt, n));
        double opencv = 0;
        for (std::size_t i = 0; i < algos.size(); ++i)
            if (algos[i] == sat::Algorithm::kOpencvLike)
                opencv = times[i];

        std::vector<std::string> row{std::to_string(n / 1024) + "k"};
        for (double t : times)
            row.push_back(TablePrinter::fmt(t, 1));
        for (std::size_t i = 0; i < algos.size(); ++i)
            if (algos[i] != sat::Algorithm::kOpencvLike)
                row.push_back(TablePrinter::fmt(opencv / times[i], 2));
        table.add_row(std::move(row));
    }
    table.print(os);
}

} // namespace satgpu::bench
