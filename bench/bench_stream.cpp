// bench_stream: device-memory traffic of the incremental sliding-window
// SAT (sat/integral_video.hpp, docs/streaming.md) against its
// recompute-from-scratch twin, for the 8u -> 32u pair at 1024 x 1024 with
// a window of T = 8 frames.
//
// Every number is derived from the simulator's LaunchStats byte counters
// or the closed-form model::predict_stream_traffic forecast -- no wall
// clock anywhere -- so the `--json` document is byte-identical on every
// machine and BENCH_stream.json in the repo root is this program's
// checked-in output, diffed by CI.
//
// The program also ENFORCES the PR's acceptance criteria and exits 1 when
// either fails:
//  * at T = 8 the steady-state incremental push must move >= 4x fewer
//    device bytes than the recompute push;
//  * both maintenance modes must agree bit for bit with the serial
//    window oracle after every ring state seen here.
#include "bench_common.hpp"

#include "core/random_fill.hpp"
#include "sat/integral_video.hpp"

#include <iostream>

int main(int argc, char** argv)
{
    using namespace satgpu;
    const auto dt = make_pair_of<u8, u32>();
    const std::int64_t n = 1024;
    const std::int64_t window = 8;
    const std::int64_t pushes = window + 2; // last two are steady-state
    const bool json = bench::bench_json_requested(argc, argv);

    simt::Engine eng(bench::bench_engine_options());
    const sat::Options opt{.algorithm = sat::Algorithm::kBrltScanRow};
    sat::SlidingWindowSat<u32, u8> inc(
        eng, window, n, n, opt, {}, sat::StreamUpdateMode::kIncremental);
    sat::SlidingWindowSat<u32, u8> rec(
        eng, window, n, n, opt, {}, sat::StreamUpdateMode::kRecompute);

    std::vector<Matrix<u8>> frames;
    std::uint64_t inc_steady = 0, rec_steady = 0;
    std::int64_t steady_pushes = 0;
    for (std::int64_t f = 0; f < pushes; ++f) {
        Matrix<u8> frame(n, n);
        fill_random(frame, 42 + static_cast<std::uint64_t>(f));
        const std::uint64_t ib = sat::device_bytes(inc.push(frame));
        const std::uint64_t rb = sat::device_bytes(rec.push(frame));
        if (f >= window) { // ring full before the push: steady state
            inc_steady += ib;
            rec_steady += rb;
            ++steady_pushes;
        }
        frames.push_back(std::move(frame));
        if (static_cast<std::int64_t>(frames.size()) > window)
            frames.erase(frames.begin());
    }
    const double inc_per_push = static_cast<double>(inc_steady) /
                                static_cast<double>(steady_pushes);
    const double rec_per_push = static_cast<double>(rec_steady) /
                                static_cast<double>(steady_pushes);
    const double ratio = rec_per_push / inc_per_push;
    const bool traffic_ok = ratio >= 4.0;

    std::vector<const Matrix<u8>*> ptrs;
    for (const auto& fr : frames)
        ptrs.push_back(&fr);
    const Matrix<u32> want = sat::window_sat_serial<u32, u8>(
        std::span<const Matrix<u8>* const>(ptrs));
    const bool exact =
        inc.window_table() == want && rec.window_table() == want;
    const bool ok = traffic_ok && exact;

    const auto forecast = model::predict_stream_traffic(dt, n, n, window);
    const double px = static_cast<double>(n) * static_cast<double>(n);

    if (json) {
        JsonWriter w(std::cout);
        bench::bench_json_prelude(w, "stream_traffic");
        w.key("dtype");
        w.value(std::string_view{"8u32u"});
        w.key("size");
        w.value(n);
        w.key("window");
        w.value(window);
        w.key("unit");
        w.value(std::string_view{"bytes per steady-state push"});
        w.key("incremental_bytes");
        w.value(inc_per_push);
        w.key("recompute_bytes");
        w.value(rec_per_push);
        w.key("ratio");
        w.value(ratio);
        w.key("model_incremental_bytes");
        w.value(forecast.incremental_bytes);
        w.key("model_recompute_bytes");
        w.value(forecast.recompute_bytes);
        w.key("bit_exact_vs_oracle");
        w.value(exact);
        w.key("crossover");
        w.begin_array();
        for (const std::int64_t t : {std::int64_t{1}, std::int64_t{2},
                                     std::int64_t{4}, std::int64_t{8},
                                     std::int64_t{16}}) {
            const auto fc = model::predict_stream_traffic(dt, n, n, t);
            w.begin_object();
            w.key("window");
            w.value(t);
            w.key("model_incremental_bytes");
            w.value(fc.incremental_bytes);
            w.key("model_recompute_bytes");
            w.value(fc.recompute_bytes);
            w.key("ratio");
            w.value(fc.recompute_bytes / fc.incremental_bytes);
            w.key("auto_mode");
            w.value(sat::to_string(sat::resolve_stream_mode(
                sat::StreamUpdateMode::kAuto, dt, n, n, t)));
            w.end_object();
        }
        w.end_array();
        w.key("traffic_target");
        w.value(4.0);
        w.key("traffic_target_met");
        w.value(traffic_ok);
        w.end_object();
        std::cout << '\n';
    } else {
        std::cout << "== sliding-window SAT traffic, incremental vs "
                     "recompute [8u32u, 1024x1024, T=8] ==\n";
        TablePrinter t({"mode", "bytes/push", "B/px", "model B/px"});
        t.add_row({"incremental", TablePrinter::fmt(inc_per_push, 0),
                   TablePrinter::fmt(inc_per_push / px, 2),
                   TablePrinter::fmt(forecast.incremental_bytes / px, 2)});
        t.add_row({"recompute", TablePrinter::fmt(rec_per_push, 0),
                   TablePrinter::fmt(rec_per_push / px, 2),
                   TablePrinter::fmt(forecast.recompute_bytes / px, 2)});
        t.print(std::cout);
        std::cout << "\ncrossover forecast (model, per push):\n";
        TablePrinter c({"window", "incremental B/px", "recompute B/px",
                        "ratio", "auto picks"});
        for (const std::int64_t tw : {std::int64_t{1}, std::int64_t{2},
                                      std::int64_t{4}, std::int64_t{8},
                                      std::int64_t{16}}) {
            const auto fc = model::predict_stream_traffic(dt, n, n, tw);
            c.add_row({std::to_string(tw),
                       TablePrinter::fmt(fc.incremental_bytes / px, 2),
                       TablePrinter::fmt(fc.recompute_bytes / px, 2),
                       TablePrinter::fmt(
                           fc.recompute_bytes / fc.incremental_bytes, 2),
                       std::string(sat::to_string(sat::resolve_stream_mode(
                           sat::StreamUpdateMode::kAuto, dt, n, n, tw)))});
        }
        c.print(std::cout);
        std::cout << "\nT=8 traffic ratio " << TablePrinter::fmt(ratio, 2)
                  << "x (target >= 4x): "
                  << (traffic_ok ? "met" : "NOT MET")
                  << "\nbit-exact vs window_sat_serial: "
                  << (exact ? "yes" : "NO") << '\n';
    }

    if (!ok) {
        std::cerr << "bench_stream: acceptance criteria failed ("
                  << (traffic_ok ? "tables not bit-exact"
                                 : "traffic ratio below 4x")
                  << ")\n";
        return 1;
    }
    return 0;
}
