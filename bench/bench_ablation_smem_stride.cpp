// Ablation: the 32x33 shared-memory padding in BRLT (Alg. 5 line 2).
// Removing the +1 stride keeps the transpose correct but serializes every
// column read 32-way; this bench quantifies the transaction blow-up and the
// estimated time impact the paper's bank-conflict warning (Sec. III-B2)
// corresponds to.
#include "bench_common.hpp"

#include <iostream>

int main()
{
    using namespace satgpu;
    const auto& gpu = model::tesla_p100();
    sat::Runtime rt(bench::bench_engine_options());
    model::CostModel& cm = rt.cost_model();

    std::cout << "Ablation: BRLT staging stride 33 (padded) vs 32 "
                 "(unpadded), BRLT-ScanRow on " << gpu.name << "\n\n";
    TablePrinter t({"dtype", "size", "padded (us)", "unpadded (us)",
                    "padded smem trans", "unpadded smem trans", "slowdown"});

    const DtypePair pairs[] = {make_pair_of<f32, f32>(),
                               make_pair_of<f64, f64>()};
    for (const auto dt : pairs) {
        for (std::int64_t k = 1; k <= 4; k *= 2) {
            const std::int64_t n = k * 1024;
            sat::Options padded, unpadded;
            unpadded.padded_smem = false;
            const auto lp = cm.predict(sat::Algorithm::kBrltScanRow, dt, n,
                                       n, padded);
            const auto lu = cm.predict(sat::Algorithm::kBrltScanRow, dt, n,
                                       n, unpadded);
            const double tp = model::estimate_total_us(gpu, lp);
            const double tu = model::estimate_total_us(gpu, lu);
            std::uint64_t trp = 0, tru = 0;
            for (const auto& l : lp)
                trp += l.counters.smem_trans();
            for (const auto& l : lu)
                tru += l.counters.smem_trans();
            t.add_row({pair_name(dt), std::to_string(k) + "k",
                       TablePrinter::fmt(tp, 1), TablePrinter::fmt(tu, 1),
                       TablePrinter::fmt_int(static_cast<std::int64_t>(trp)),
                       TablePrinter::fmt_int(static_cast<std::int64_t>(tru)),
                       TablePrinter::fmt(tu / tp, 2) + "x"});
        }
    }
    t.print(std::cout);
    std::cout << "\n4-byte types: column reads serialize 32-way without "
                 "padding (~16x total\nsmem traffic on the transpose). "
                 "8-byte types split into half-warp\ntransactions, so the "
                 "unpadded penalty is 16-way.\n";
    return 0;
}
