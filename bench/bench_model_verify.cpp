// Section V model verification: the closed-form single-warp quantities
// (op counts, Eqs. 3-5 latency estimates, Eqs. 10-13 throughput times) and
// the inequalities (Eqs. 6, 14, 15) on both GPUs -- plus a cross-check that
// the SIMULATOR's measured per-tile counters equal the paper's formulas.
#include "core/table_printer.hpp"
#include "model/gpu_specs.hpp"
#include "model/paper_model.hpp"
#include "sat/brlt.hpp"
#include "scan/serial_scan.hpp"
#include "scan/warp_scan.hpp"
#include "simt/engine.hpp"

#include <iostream>

namespace {

using namespace satgpu;

/// Measure one 32x32 tile's ops in the simulator for each method.
simt::PerfCounters measure_tile(const char* what)
{
    simt::PerfCounters c;
    simt::CounterScope scope(c);
    std::array<simt::LaneVec<float>, 32> regs;
    for (auto& r : regs)
        r = simt::LaneVec<float>::broadcast(1.0f);

    if (std::string_view(what) == "serial")
        scan::serial_scan_registers(regs);
    else if (std::string_view(what) == "kogge-stone")
        for (auto& r : regs)
            r = scan::kogge_stone_scan(r);
    else if (std::string_view(what) == "ladner-fischer")
        for (auto& r : regs)
            r = scan::ladner_fischer_scan(r);
    return c;
}

} // namespace

int main()
{
    std::cout << "Section V performance model verification\n";

    std::cout << "\n-- Single 32x32 tile: paper formulas vs simulator "
                 "counters --\n\n";
    TablePrinter ops({"method", "adds (paper)", "adds (sim)",
                      "shuffles (paper)", "shuffles (sim)", "ANDs (paper)",
                      "ANDs (sim)"});
    using C = model::TileOpCounts;
    const auto serial = measure_tile("serial");
    const auto ks = measure_tile("kogge-stone");
    const auto lf = measure_tile("ladner-fischer");
    ops.add_row({"serial column scan", TablePrinter::fmt_int(C::scan_col_adds),
                 TablePrinter::fmt_int(static_cast<std::int64_t>(serial.lane_add)),
                 "0", TablePrinter::fmt_int(static_cast<std::int64_t>(serial.warp_shfl)),
                 "0", "0"});
    ops.add_row({"Kogge-Stone rows", TablePrinter::fmt_int(C::kogge_stone_adds),
                 TablePrinter::fmt_int(static_cast<std::int64_t>(ks.lane_add)),
                 TablePrinter::fmt_int(C::scan_row_shfl),
                 TablePrinter::fmt_int(static_cast<std::int64_t>(ks.warp_shfl)),
                 "0", "0"});
    ops.add_row({"Ladner-Fischer rows", TablePrinter::fmt_int(C::lf_adds),
                 TablePrinter::fmt_int(static_cast<std::int64_t>(lf.lane_add)),
                 TablePrinter::fmt_int(C::scan_row_shfl),
                 TablePrinter::fmt_int(static_cast<std::int64_t>(lf.warp_shfl)),
                 TablePrinter::fmt_int(C::lf_ands),
                 TablePrinter::fmt_int(static_cast<std::int64_t>(lf.lane_bool))});
    ops.print(std::cout);

    for (const auto* g : {&model::tesla_p100(), &model::tesla_v100()}) {
        std::cout << "\n-- " << g->name << " --\n\n";
        TablePrinter lat({"quantity", "value"});
        lat.add_row({"Eq.3  L_transpose (cycles)",
                     TablePrinter::fmt(model::eq3_transpose_latency_cycles(*g), 0)});
        lat.add_row({"Eq.4  L_scan_row (cycles)",
                     TablePrinter::fmt(model::eq4_scan_row_latency_cycles(*g), 0)});
        lat.add_row({"Eq.5  L_scan_col (cycles)",
                     TablePrinter::fmt(model::eq5_scan_col_latency_cycles(*g), 0)});
        lat.add_row({"Eq.10 T_trans 32f (ns)",
                     TablePrinter::fmt(model::eq10_transpose_time_us(*g, 4) * 1e3, 3)});
        lat.add_row({"Eq.11 T_scan_col_add (ns)",
                     TablePrinter::fmt(model::eq11_scan_col_add_time_us(*g) * 1e3, 3)});
        lat.add_row({"Eq.12 T_shuffle (ns)",
                     TablePrinter::fmt(model::eq12_shuffle_time_us(*g) * 1e3, 3)});
        lat.add_row({"Eq.13 T_KS_add (ns)",
                     TablePrinter::fmt(model::eq13_kogge_stone_add_time_us(*g) * 1e3, 3)});
        lat.print(std::cout);

        std::cout << '\n';
        TablePrinter ineq({"inequality", "lhs", "rhs", "verdict"});
        const model::Inequality qs[] = {
            model::eq6_latency_inequality(*g),
            model::eq14_throughput_inequality(*g, 4),
            model::eq15_throughput_inequality(*g, 4),
            model::eq14_throughput_inequality(*g, 8),
        };
        for (const auto& q : qs)
            ineq.add_row({q.name, TablePrinter::fmt(q.lhs, 4),
                          TablePrinter::fmt(q.rhs, 4),
                          q.holds() ? "holds" : "VIOLATED"});
        ineq.print(std::cout);
    }
    return 0;
}
