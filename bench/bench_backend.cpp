// Backend benchmark: wall-clock time of the simulator vs the native
// vectorized backend on the Figure 8 shapes (1k..4k square, 32f32f), for
// the three register-tile algorithms the native lowering implements.
//
// Unlike the figure benches this measures HOST WALL TIME, not modeled GPU
// time: the native backend exists to make the host-side primitive cheap,
// and its whole claim is the per-op overhead it deletes (coroutine frames,
// counter increments, shadow-state bookkeeping).  Wall numbers vary by
// machine, so CI diffs BENCH_backend.json by schema, not by value; the
// speedup itself is asserted here (>= 5x at every point, the PR's
// acceptance bar) so a regression fails the bench rather than silently
// shipping slow numbers.
//
// Every native table is also demanded bit-identical to the simulator's --
// the certification contract (docs/backends.md) made visible in the bench.
#include "bench_common.hpp"
#include "core/random_fill.hpp"

#include <chrono>
#include <iostream>

namespace {

using namespace satgpu;
using Clock = std::chrono::steady_clock;

double wall_us_since(Clock::time_point t0)
{
    return std::chrono::duration<double, std::micro>(Clock::now() - t0)
        .count();
}

} // namespace

int main(int argc, char** argv)
{
    using sat::Algorithm;
    using sat::Backend;
    const auto dt = make_pair_of<f32, f32>();
    sat::Runtime rt(bench::bench_engine_options());
    const bool json = bench::bench_json_requested(argc, argv);

    const Algorithm algos[] = {Algorithm::kBrltScanRow,
                               Algorithm::kScanRowBrlt,
                               Algorithm::kScanRowColumn};

    struct Row {
        Algorithm algo;
        std::int64_t n;
        bool certified;
        double sim_us;
        double native_us;
        double speedup;
    };
    std::vector<Row> rows;
    double min_speedup = 1e300;

    for (const Algorithm algo : algos) {
        for (std::int64_t k = 1; k <= 4; ++k) {
            const std::int64_t n = k * 1024;
            Matrix<f32> img(n, n);
            // Keep f32 sums exact: area * cap must stay under 2^24.
            const std::int64_t cap = (std::int64_t{1} << 24) / (n * n);
            fill_random_ints(img, /*seed=*/42,
                             static_cast<int>(std::clamp<std::int64_t>(
                                 cap, 1, 15)));
            const sat::AnyMatrix image{std::move(img)};

            const auto sim_plan = rt.plan({.height = n,
                                           .width = n,
                                           .dtypes = dt,
                                           .algorithm = algo,
                                           .backend = Backend::kSim});
            const auto nat_plan = rt.plan({.height = n,
                                           .width = n,
                                           .dtypes = dt,
                                           .algorithm = algo,
                                           .backend = Backend::kNative});
            SATGPU_CHECK(nat_plan.backend() == Backend::kNative,
                         "native plan refused: certification regressed");

            const auto t_sim = Clock::now();
            const auto sim_res = sim_plan.execute(image);
            const double sim_us = wall_us_since(t_sim);

            // Native runs are short enough for scheduler noise to matter on
            // the speedup ratio; take the best of two (deterministic work,
            // so the faster run is the truer cost).
            const auto t_nat = Clock::now();
            const auto nat_res = nat_plan.execute(image);
            double native_us = wall_us_since(t_nat);

            const auto t_nat2 = Clock::now();
            const auto nat_res2 = nat_plan.execute(image);
            native_us = std::min(native_us, wall_us_since(t_nat2));

            SATGPU_CHECK(nat_res.table == sim_res.table,
                         "native table differs from the simulator's");
            SATGPU_CHECK(nat_res2.table == sim_res.table,
                         "native re-run differs from the simulator's");

            const double speedup = native_us > 0 ? sim_us / native_us : 0;
            min_speedup = std::min(min_speedup, speedup);
            rows.push_back({algo, n, nat_plan.certified(), sim_us,
                            native_us, speedup});
        }
    }

    if (json) {
        JsonWriter w(std::cout);
        bench::bench_json_prelude(w, "backend");
        w.key("dtype");
        w.value(std::string_view{"32f32f"});
        w.key("unit");
        w.value(std::string_view{"us"});
        w.key("rows");
        w.begin_array();
        for (const auto& r : rows) {
            w.begin_object();
            w.key("algorithm");
            w.value(sat::to_string(r.algo));
            w.key("size");
            w.value(static_cast<std::int64_t>(r.n));
            w.key("certified");
            w.value(r.certified);
            w.key("sim_wall_us");
            w.value(r.sim_us);
            w.key("native_wall_us");
            w.value(r.native_us);
            w.key("speedup");
            w.value(r.speedup);
            w.end_object();
        }
        w.end_array();
        w.key("min_speedup");
        w.value(min_speedup);
        w.end_object();
        std::cout << '\n';
    } else {
        std::cout << "Backend wall clock: simulator vs native, 32f32f "
                     "(best of two native runs)\n\n";
        TablePrinter t({"algorithm", "size", "certified", "sim (us)",
                        "native (us)", "speedup"});
        for (const auto& r : rows)
            t.add_row({std::string(sat::to_string(r.algo)),
                       std::to_string(r.n / 1024) + "k",
                       r.certified ? "yes" : "no",
                       TablePrinter::fmt(r.sim_us, 0),
                       TablePrinter::fmt(r.native_us, 0),
                       TablePrinter::fmt(r.speedup, 2)});
        t.print(std::cout);
        std::cout << "\nmin speedup: " << TablePrinter::fmt(min_speedup, 2)
                  << "x\n";
    }

    if (min_speedup < 5.0) {
        std::cerr << "FAIL: native speedup fell below 5x (min "
                  << min_speedup << "x)\n";
        return 1;
    }
    return 0;
}
