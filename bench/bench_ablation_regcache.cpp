// Ablation: register cache vs scratchpad-memory cache (the paper's central
// design decision, Secs. II and IV-1).  Both kernels implement the same
// transposing row scan; only the tile's home differs.  Reports shared-memory
// traffic, occupancy and estimated time on P100.
#include "baselines/smem_tile.hpp"
#include "bench_common.hpp"
#include "core/random_fill.hpp"

#include <iostream>

int main()
{
    using namespace satgpu;
    const auto& gpu = model::tesla_p100();
    const auto dt = make_pair_of<f32, f32>();
    sat::Runtime rt(bench::bench_engine_options());
    model::CostModel& cm = rt.cost_model();

    std::cout << "Ablation: register cache (BRLT-ScanRow) vs scratchpad "
                 "cache, 32f32f on " << gpu.name << "\n\n";

    // Calibrate the scratchpad variant at 1k and scale like the cost model.
    Matrix<f32> img(1024, 1024);
    fill_random(img, 3);
    simt::Engine eng;
    const auto smem_calib =
        baselines::compute_sat_smem_tile<f32>(eng, img).launches;

    TablePrinter t({"size", "regcache (us)", "scratchpad (us)",
                    "regcache smem trans", "scratchpad smem trans",
                    "regcache warps/SM", "scratchpad warps/SM",
                    "scratchpad penalty"});
    for (std::int64_t k = 1; k <= 8; k *= 2) {
        const std::int64_t n = k * 1024;
        const double factor =
            static_cast<double>(n) * static_cast<double>(n) /
            (1024.0 * 1024.0);

        const auto reg = cm.predict(sat::Algorithm::kBrltScanRow, dt, n, n);
        double reg_us = model::estimate_total_us(gpu, reg);

        double smem_us = 0;
        std::uint64_t smem_trans = 0;
        model::Occupancy smem_occ;
        std::vector<simt::LaunchStats> scaled;
        for (const auto& l : smem_calib) {
            simt::LaunchStats s = l;
            s.counters = model::scale_counters(l.counters, factor);
            s.config.grid.y = l.config.grid.y * k; // blocks scale with rows
            s.counters.blocks =
                static_cast<std::uint64_t>(s.config.total_blocks());
            s.counters.warps =
                static_cast<std::uint64_t>(s.config.total_warps());
            const auto bt = model::estimate_kernel_time(gpu, s);
            smem_us += bt.total_us;
            smem_trans += s.counters.smem_trans();
            smem_occ = bt.occupancy;
        }
        std::uint64_t reg_trans = 0;
        model::Occupancy reg_occ;
        for (const auto& l : reg) {
            reg_trans += l.counters.smem_trans();
            reg_occ = model::estimate_kernel_time(gpu, l).occupancy;
        }

        t.add_row({std::to_string(k) + "k", TablePrinter::fmt(reg_us, 1),
                   TablePrinter::fmt(smem_us, 1),
                   TablePrinter::fmt_int(static_cast<std::int64_t>(reg_trans)),
                   TablePrinter::fmt_int(static_cast<std::int64_t>(smem_trans)),
                   TablePrinter::fmt_int(reg_occ.warps_per_sm),
                   TablePrinter::fmt_int(smem_occ.warps_per_sm),
                   TablePrinter::fmt(smem_us / reg_us, 2) + "x"});
    }
    t.print(std::cout);
    std::cout << "\nThe register cache wins on both axes the paper names: "
                 "less shared-memory\ntraffic per tile and 4x the resident "
                 "warps (Table I capacity argument).\n";
    return 0;
}
