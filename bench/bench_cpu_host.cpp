// Host-side wall-clock benchmarks (google-benchmark): the CPU reference
// SATs and the functional-simulation throughput of the GPU kernels.  These
// are the only MEASURED times in the harness; everything labelled P100/V100
// elsewhere comes from the analytic model.
#include "bench_common.hpp"
#include "core/random_fill.hpp"
#include "sat/sat.hpp"

#include <benchmark/benchmark.h>

namespace {

using namespace satgpu;

template <typename Tout, typename Tin>
void bm_cpu_serial(benchmark::State& state)
{
    const auto n = state.range(0);
    Matrix<Tin> img(n, n);
    fill_random(img, 1);
    for (auto _ : state) {
        auto out = sat::sat_serial<Tout>(img);
        benchmark::DoNotOptimize(out.flat().data());
    }
    state.SetItemsProcessed(state.iterations() * n * n);
}

template <typename Tout, typename Tin>
void bm_cpu_two_pass(benchmark::State& state)
{
    const auto n = state.range(0);
    Matrix<Tin> img(n, n);
    fill_random(img, 2);
    for (auto _ : state) {
        auto out = sat::sat_two_pass<Tout>(img);
        benchmark::DoNotOptimize(out.flat().data());
    }
    state.SetItemsProcessed(state.iterations() * n * n);
}

template <typename Tout, typename Tin>
void bm_cpu_parallel(benchmark::State& state)
{
    const auto n = state.range(0);
    Matrix<Tin> img(n, n);
    fill_random(img, 3);
    for (auto _ : state) {
        auto out = sat::sat_parallel<Tout>(img);
        benchmark::DoNotOptimize(out.flat().data());
    }
    state.SetItemsProcessed(state.iterations() * n * n);
}

void bm_simulator_brlt(benchmark::State& state)
{
    const auto n = state.range(0);
    Matrix<float> img(n, n);
    fill_random(img, 4);
    for (auto _ : state) {
        simt::Engine eng(bench::bench_engine_options());
        auto res = sat::compute_sat<float>(
            eng, img, {sat::Algorithm::kBrltScanRow});
        benchmark::DoNotOptimize(res.table.flat().data());
    }
    state.SetItemsProcessed(state.iterations() * n * n);
    state.SetLabel("simulated lanes/s");
}

void bm_rect_sum_queries(benchmark::State& state)
{
    Matrix<std::uint8_t> img(1024, 1024);
    fill_random(img, 5);
    const auto table = sat::sat_serial<std::uint32_t>(img);
    std::uint64_t q = 0;
    for (auto _ : state) {
        const std::int64_t y0 = static_cast<std::int64_t>(q * 37 % 500);
        const std::int64_t x0 = static_cast<std::int64_t>(q * 53 % 500);
        benchmark::DoNotOptimize(
            sat::rect_sum(table, y0, x0, y0 + 400, x0 + 400));
        ++q;
    }
    state.SetItemsProcessed(state.iterations());
}

} // namespace

BENCHMARK(bm_cpu_serial<std::uint32_t, std::uint8_t>)
    ->Arg(512)->Arg(1024)->Arg(2048)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_cpu_serial<float, float>)
    ->Arg(512)->Arg(1024)->Arg(2048)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_cpu_two_pass<std::uint32_t, std::uint8_t>)
    ->Arg(1024)->Arg(2048)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_cpu_parallel<std::uint32_t, std::uint8_t>)
    ->Arg(1024)->Arg(2048)->Unit(benchmark::kMillisecond);
BENCHMARK(bm_simulator_brlt)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(bm_rect_sum_queries);

BENCHMARK_MAIN();
