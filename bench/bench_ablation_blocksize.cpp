// Ablation: BRLT-ScanRow block size.  The paper picks BlockSize = 1024 (32
// warps) for 4-byte types "to achieve the highest occupancy" (Sec. IV-2);
// this bench sweeps 4..32 warps per block and reports the occupancy,
// barrier count and estimated time trade-off on P100.
#include "bench_common.hpp"
#include "core/random_fill.hpp"
#include "sat/brlt_scanrow.hpp"

#include <iostream>

int main()
{
    using namespace satgpu;
    const auto& gpu = model::tesla_p100();
    constexpr std::int64_t kCal = 1024; // calibration size
    constexpr std::int64_t kN = 4096;   // reported size
    const double factor =
        static_cast<double>(kN) * kN / (static_cast<double>(kCal) * kCal);

    std::cout << "Ablation: BRLT-ScanRow warps per block, 32f32f "
              << kN / 1024 << "k on " << gpu.name << "\n\n";
    TablePrinter t({"warps/block", "blocks/SM", "warps/SM", "occupancy",
                    "barriers", "est. time (us)"});

    Matrix<f32> img(kCal, kCal);
    fill_random(img, 4);
    const auto in = simt::DeviceBuffer<f32>::from_matrix(img);

    for (const int wc : {4, 8, 16, 32}) {
        simt::Engine eng({.record_history = false});
        simt::DeviceBuffer<f32> mid(kCal * kCal), out(kCal * kCal);
        std::vector<simt::LaunchStats> calib{
            sat::launch_brlt_scanrow_pass<f32>(eng, in, kCal, kCal, mid,
                                               true, wc),
            sat::launch_brlt_scanrow_pass<f32>(eng, mid, kCal, kCal, out,
                                               true, wc)};

        double total_us = 0;
        std::uint64_t barriers = 0;
        model::Occupancy occ;
        for (const auto& l : calib) {
            simt::LaunchStats s = l;
            s.counters = model::scale_counters(l.counters, factor);
            s.config.grid.y = l.config.grid.y * (kN / kCal);
            s.counters.blocks =
                static_cast<std::uint64_t>(s.config.total_blocks());
            s.counters.warps =
                static_cast<std::uint64_t>(s.config.total_warps());
            const auto bt = model::estimate_kernel_time(gpu, s);
            total_us += bt.total_us;
            barriers += s.counters.barriers;
            occ = bt.occupancy;
        }
        t.add_row({TablePrinter::fmt_int(wc),
                   TablePrinter::fmt_int(occ.blocks_per_sm),
                   TablePrinter::fmt_int(occ.warps_per_sm),
                   TablePrinter::fmt(occ.fraction * 100, 0) + "%",
                   TablePrinter::fmt_int(static_cast<std::int64_t>(barriers)),
                   TablePrinter::fmt(total_us, 1)});
    }
    t.print(std::cout);
    std::cout << "\nSmaller blocks need more chunk iterations (more barrier "
                 "rounds and carry\ntraffic per byte); the paper's 32-warp "
                 "choice maximizes resident warps\nunder the BRLT shared-"
                 "memory footprint.\n";
    return 0;
}
