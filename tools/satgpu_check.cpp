// satgpu_check: hazard-checker sweep over the whole shipped kernel zoo.
//
// Default mode runs every algorithm x every paper dtype pair x a set of
// ragged shapes (warp-misaligned heights and widths exercise the
// predicated tile edges) with the warp-synchronous hazard checker enabled
// AND verifies each table against the serial reference; any hazard or any
// mismatch makes the exit status nonzero.  CI runs this as the
// "sanitizer" gate for the SIMT substrate.
//
// --tiled sweeps the macro-tile out-of-core path instead: every algorithm
// x dtype pair x ragged shape x tile geometry must be hazard-clean and
// bit-identical to the serial reference.
//
// --self-test inverts the expectation: it runs the three deliberately
// broken kernel variants (sat/broken_kernels.hpp) and FAILS unless the
// checker flags each -- the missing-barrier BRLT must be attributed to
// the exact file:line of the offending tile store, the unpublished tiled
// carry prefix to its premature smem load -- while their outputs remain
// correct under the deterministic scheduler (the scenario golden tests
// cannot catch).
#include "sat/broken_kernels.hpp"
#include "sat/runtime.hpp"
#include "simt/hazard_checker.hpp"

#include <cstring>
#include <iostream>
#include <string>

namespace {

using namespace satgpu;

struct Shape {
    std::int64_t h, w;
};

// Ragged on purpose: none is a multiple of 32 in both dimensions.
constexpr Shape kShapes[] = {{33, 31}, {97, 130}, {130, 97}};

int run_sweep(int threads)
{
    sat::Runtime rt({.record_history = false, .num_threads = threads});
    int checked = 0;
    std::uint64_t hazards = 0;
    int mismatches = 0;

    for (const sat::Algorithm algo : sat::kAllAlgorithms)
        for (const DtypePair pair : kPaperDtypePairs)
            for (const Shape s : kShapes) {
                const auto plan = rt.plan({.height = s.h,
                                           .width = s.w,
                                           .dtypes = pair,
                                           .algorithm = algo,
                                           .check = true});
                const auto image = sat::AnyMatrix::random(
                    pair.in, s.h, s.w, /*seed=*/7);
                const auto res = plan.execute(image);
                ++checked;

                const std::uint64_t hz = simt::total_hazards(res.launches);
                if (hz != 0) {
                    hazards += hz;
                    std::cout << "HAZARD " << sat::to_string(algo) << " "
                              << pair_name(pair) << " " << s.h << "x" << s.w
                              << ":\n";
                    for (const auto& l : res.launches) {
                        if (!l.hazards)
                            continue;
                        for (const auto& h : l.hazards->hazards)
                            std::cout << "  [" << l.info.name << "] "
                                      << simt::to_string(h.kind) << " at "
                                      << h.site << " x" << h.count << '\n';
                    }
                }
                if (!(res.table == rt.reference(image, pair.out))) {
                    ++mismatches;
                    std::cout << "MISMATCH " << sat::to_string(algo) << " "
                              << pair_name(pair) << " " << s.h << "x" << s.w
                              << '\n';
                }
            }

    std::cout << "swept " << checked << " (algorithm, dtype, shape) runs: "
              << hazards << " hazard(s), " << mismatches
              << " reference mismatch(es)\n";
    return hazards == 0 && mismatches == 0 ? 0 : 1;
}

/// Expect `kind` among the run's findings, attributed to `site`.
bool expect_hazard(const sat::broken::BrokenRun& run, simt::HazardKind kind,
                   const std::string& site, const char* what)
{
    if (!run.output_correct) {
        std::cout << what
                  << ": output unexpectedly wrong (the fixtures must stay "
                     "correct under the deterministic scheduler)\n";
        return false;
    }
    if (!run.stats.hazards) {
        std::cout << what << ": no hazard report attached\n";
        return false;
    }
    for (const auto& h : run.stats.hazards->hazards)
        if (h.kind == kind && h.site == site) {
            std::cout << what << ": flagged " << simt::to_string(h.kind)
                      << " at " << h.site << " x" << h.count
                      << " (output still correct) -- as expected\n";
            return true;
        }
    std::cout << what << ": expected " << simt::to_string(kind) << " at "
              << site << ", checker reported:\n";
    for (const auto& h : run.stats.hazards->hazards)
        std::cout << "  " << simt::to_string(h.kind) << " at " << h.site
                  << " x" << h.count << '\n';
    if (run.stats.hazards->clean())
        std::cout << "  (nothing)\n";
    return false;
}

int run_self_test(int threads)
{
    simt::Engine eng({.record_history = false,
                      .num_threads = threads,
                      .check = true});

    const auto brlt = sat::broken::run_brlt_missing_barrier(eng);
    const std::string brlt_site =
        std::string(sat::broken::kFile) + ":" +
        std::to_string(sat::broken::brlt_store_line());
    bool ok = expect_hazard(brlt, simt::HazardKind::kSmemWaw, brlt_site,
                            "missing-barrier BRLT");

    const auto carry = sat::broken::run_unsynced_smem_tile(eng);
    const std::string carry_site =
        std::string(sat::broken::kFile) + ":" +
        std::to_string(sat::broken::carry_load_line());
    ok &= expect_hazard(carry, simt::HazardKind::kSmemRaw, carry_site,
                        "unsynced smem tile");

    const auto tiled = sat::broken::run_tiled_carry_prefix(eng);
    const std::string tiled_site =
        std::string(sat::broken::kFile) + ":" +
        std::to_string(sat::broken::tiled_carry_line());
    ok &= expect_hazard(tiled, simt::HazardKind::kSmemRaw, tiled_site,
                        "unpublished tiled carry prefix");

    return ok ? 0 : 1;
}

int run_tiled_sweep(int threads)
{
    sat::Runtime rt({.record_history = false, .num_threads = threads});
    int checked = 0;
    std::uint64_t hazards = 0;
    int mismatches = 0;

    // Small geometries on ragged shapes maximize tile-count and ragged-edge
    // coverage; 64x32 / 32x64 exercise non-square grids in both aspects.
    constexpr sat::TileGeometry kGeometries[] = {
        {32, 32, 4}, {64, 32, 2}, {32, 64, 3}};
    constexpr Shape kTiledShapes[] = {{97, 130}, {130, 97}};

    for (const sat::Algorithm algo : sat::kAllAlgorithms)
        for (const DtypePair pair : kPaperDtypePairs)
            for (const Shape s : kTiledShapes)
                for (const sat::TileGeometry& g : kGeometries) {
                    const auto plan = rt.plan({.height = s.h,
                                               .width = s.w,
                                               .dtypes = pair,
                                               .algorithm = algo,
                                               .tile = g,
                                               .check = true});
                    const auto image = sat::AnyMatrix::random(
                        pair.in, s.h, s.w, /*seed=*/7);
                    const auto res = plan.execute(image);
                    ++checked;

                    const std::uint64_t hz =
                        simt::total_hazards(res.launches);
                    if (hz != 0) {
                        hazards += hz;
                        std::cout << "HAZARD " << sat::to_string(algo) << " "
                                  << pair_name(pair) << " " << s.h << "x"
                                  << s.w << " tile " << g.tile_h << "x"
                                  << g.tile_w << ":\n";
                        for (const auto& l : res.launches) {
                            if (!l.hazards)
                                continue;
                            for (const auto& h : l.hazards->hazards)
                                std::cout << "  [" << l.info.name << "] "
                                          << simt::to_string(h.kind)
                                          << " at " << h.site << " x"
                                          << h.count << '\n';
                        }
                    }
                    if (!(res.table == rt.reference(image, pair.out))) {
                        ++mismatches;
                        std::cout << "MISMATCH " << sat::to_string(algo)
                                  << " " << pair_name(pair) << " " << s.h
                                  << "x" << s.w << " tile " << g.tile_h
                                  << "x" << g.tile_w << '\n';
                    }
                }

    std::cout << "tiled sweep: " << checked
              << " (algorithm, dtype, shape, geometry) runs: " << hazards
              << " hazard(s), " << mismatches << " reference mismatch(es)\n";
    return hazards == 0 && mismatches == 0 ? 0 : 1;
}

} // namespace

int main(int argc, char** argv)
{
    bool self_test = false;
    bool tiled = false;
    int threads = 0;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--self-test") {
            self_test = true;
        } else if (arg == "--tiled") {
            tiled = true;
        } else if (arg == "--threads" && i + 1 < argc) {
            threads = std::atoi(argv[++i]);
        } else {
            std::cout << "usage: satgpu_check [--self-test] [--tiled] "
                         "[--threads N]\n"
                         "  default: run every algorithm x dtype pair x "
                         "ragged shape\n"
                         "           with the hazard checker on; exit 1 on "
                         "any hazard\n"
                         "           or reference mismatch\n"
                         "  --tiled: same sweep through the macro-tile "
                         "out-of-core path\n"
                         "           across several tile geometries\n"
                         "  --self-test: run the deliberately broken kernel "
                         "variants;\n"
                         "           exit 1 unless each is flagged at the "
                         "expected site\n";
            return arg == "--help" || arg == "-h" ? 0 : 2;
        }
    }
    if (self_test)
        return run_self_test(threads);
    return tiled ? run_tiled_sweep(threads) : run_sweep(threads);
}
