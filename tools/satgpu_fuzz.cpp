// satgpu_fuzz: seeded randomized differential fuzzer for the SAT runtime.
//
// Each seed deterministically samples one configuration -- dtype pair,
// algorithm (incl. kAuto), shape up to 4096 x 4096 (log-uniform, so ragged
// small shapes dominate but the tail reaches full size), optional macro-tile
// geometry, scheduler thread count, batch size -- executes it through
// sat::Runtime, and demands the result be BIT-EXACT against the serial CPU
// oracle (sat::Runtime::reference).  Inputs are integer-valued with a
// magnitude cap shrunk by image area so float SATs stay exactly
// representable and every scan order agrees bitwise.
//
// Modes:
//   satgpu_fuzz --seeds N     run seeds 0..N-1 (CI smoke uses N=64)
//   satgpu_fuzz --seed S      reproduce exactly one seed, verbosely
//   satgpu_fuzz --service ... route every case through a sat::Service
//                             whose worker count / wave size / linger /
//                             queue depth are sampled per seed, instead
//                             of a direct Runtime plan
//   satgpu_fuzz --backend-diff  additionally execute each case through a
//                             Backend::kNative plan and demand the native
//                             table equal the simulator's bit for bit
//   satgpu_fuzz --query-diff  attach a sampled SAT-consumer query
//                             (box/thresh/wsum/hist) to each case and run
//                             it BOTH ways -- the fused tiled pipeline and
//                             materialize-then-consume -- demanding each
//                             output equal the serial query oracle bit for
//                             bit
//   satgpu_fuzz --stream-diff replay a random frame sequence (each frame a
//                             random pixel-delta mutation of the last)
//                             through an incremental SlidingWindowSat AND
//                             its from-scratch recompute twin, demanding
//                             both window aggregates equal the serial
//                             window oracle bit for bit after EVERY push
//
// On mismatch the tool prints the failing seed plus the full sampled
// configuration and exits 1; re-running `satgpu_fuzz --seed S` replays that
// single case (sampling consumes the RNG in a fixed order, so one seed
// always maps to the same configuration on every build).
#include "core/random_fill.hpp"
#include "sat/integral_video.hpp"
#include "sat/runtime.hpp"
#include "sat/service.hpp"

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <random>
#include <sstream>
#include <string>

namespace {

using namespace satgpu;

/// One fully sampled fuzz case.
struct FuzzConfig {
    std::uint64_t seed = 0;
    DtypePair pair{Dtype::u8_, Dtype::u32_};
    sat::Algorithm algo = sat::Algorithm::kAuto;
    std::int64_t h = 1, w = 1;
    sat::TileGeometry tile{}; ///< disabled => untiled path
    int threads = 1;
    int batch = 1;
    int fill_hi = 15; ///< input magnitude cap (see header comment)
};

/// Log-uniform side length in [1, 4096]: exponent uniform in [0, 12].
std::int64_t sample_side(std::mt19937_64& rng)
{
    std::uniform_real_distribution<double> lg(0.0, 12.0);
    const auto s = static_cast<std::int64_t>(std::exp2(lg(rng)));
    return std::clamp<std::int64_t>(s, 1, 4096);
}

FuzzConfig sample(std::uint64_t seed)
{
    // Sampling order is fixed: changing it changes what every seed means,
    // which invalidates recorded failing seeds.  Append new knobs at the end.
    std::mt19937_64 rng(seed);
    FuzzConfig c;
    c.seed = seed;
    c.pair = kPaperDtypePairs[std::uniform_int_distribution<std::size_t>(
        0, std::size(kPaperDtypePairs) - 1)(rng)];
    // 7 concrete algorithms + kAuto at ~1/8 probability.
    const auto ai = std::uniform_int_distribution<std::size_t>(
        0, std::size(sat::kAllAlgorithms))(rng);
    c.algo = ai < std::size(sat::kAllAlgorithms) ? sat::kAllAlgorithms[ai]
                                                 : sat::Algorithm::kAuto;
    c.h = sample_side(rng);
    c.w = sample_side(rng);
    if (std::uniform_int_distribution<int>(0, 1)(rng)) { // ~50% tiled
        constexpr std::int64_t kSides[] = {32, 64, 128, 256};
        c.tile.tile_h = kSides[std::uniform_int_distribution<std::size_t>(
            0, std::size(kSides) - 1)(rng)];
        c.tile.tile_w = kSides[std::uniform_int_distribution<std::size_t>(
            0, std::size(kSides) - 1)(rng)];
        c.tile.carry_fanout = std::uniform_int_distribution<int>(1, 4)(rng);
    }
    constexpr int kThreads[] = {1, 2, 7};
    c.threads = kThreads[std::uniform_int_distribution<std::size_t>(
        0, std::size(kThreads) - 1)(rng)];
    c.batch = std::uniform_int_distribution<int>(1, 3)(rng);
    // f32 sums are exact only up to 2^24; shrink the fill cap so
    // area * hi stays under it.  Wider accumulators keep the default.
    if (c.pair.out == Dtype::f32_) {
        const std::int64_t cap = (std::int64_t{1} << 24) / (c.h * c.w);
        c.fill_hi = static_cast<int>(std::clamp<std::int64_t>(cap, 1, 15));
    }
    return c;
}

std::string describe(const FuzzConfig& c)
{
    std::ostringstream os;
    os << pair_name(c.pair) << ' '
       << (c.algo == sat::Algorithm::kAuto ? "auto"
                                           : sat::to_string(c.algo))
       << ' ' << c.h << 'x' << c.w;
    if (c.tile.enabled())
        os << " tile " << c.tile.tile_h << 'x' << c.tile.tile_w << " fanout "
           << c.tile.carry_fanout;
    else
        os << " untiled";
    os << " threads " << c.threads << " batch " << c.batch << " fill 0.."
       << c.fill_hi;
    return os.str();
}

sat::AnyMatrix random_image(Dtype t, std::int64_t h, std::int64_t w,
                            std::uint64_t seed, int hi)
{
    sat::AnyMatrix m = sat::AnyMatrix::zeros(t, h, w);
    switch (t) {
    case Dtype::u8_: fill_random_ints(m.as<u8>(), seed, hi); break;
    case Dtype::i32_: fill_random_ints(m.as<i32>(), seed, hi); break;
    case Dtype::u32_: fill_random_ints(m.as<u32>(), seed, hi); break;
    case Dtype::f32_: fill_random_ints(m.as<f32>(), seed, hi); break;
    case Dtype::f64_: fill_random_ints(m.as<f64>(), seed, hi); break;
    }
    return m;
}

/// Runtimes are cached per thread count: kAuto plans share one calibrated
/// cost model and the buffer pool keeps recycling across seeds, which is
/// exactly the steady-state serving configuration worth fuzzing.
sat::Runtime& runtime_for(int threads)
{
    static std::map<int, std::unique_ptr<sat::Runtime>> cache;
    auto& slot = cache[threads];
    if (!slot)
        slot = std::make_unique<sat::Runtime>(
            simt::Engine::Options{.record_history = false,
                                  .num_threads = threads});
    return *slot;
}

/// Service-shape knobs for --service mode.  Sampled from a SEPARATE rng
/// stream: drawing them from the base rng would shift every knob sampled
/// after them and silently re-meaning all recorded failing seeds.
struct ServiceConfig {
    int workers = 1;
    int wave = 1;
    int linger_us = 0;
    std::size_t queue = 8;
};

ServiceConfig sample_service(std::uint64_t seed)
{
    std::mt19937_64 rng(seed ^ 0x5e41ce5eedf00dull);
    ServiceConfig s;
    constexpr int kWorkers[] = {1, 2, 3};
    s.workers = kWorkers[std::uniform_int_distribution<std::size_t>(
        0, std::size(kWorkers) - 1)(rng)];
    constexpr int kWave[] = {1, 2, 4, 8};
    s.wave = kWave[std::uniform_int_distribution<std::size_t>(
        0, std::size(kWave) - 1)(rng)];
    constexpr int kLinger[] = {0, 500};
    s.linger_us = kLinger[std::uniform_int_distribution<std::size_t>(
        0, std::size(kLinger) - 1)(rng)];
    // Depths below the batch size exercise kBlock backpressure.
    constexpr std::size_t kQueue[] = {2, 8, 64};
    s.queue = kQueue[std::uniform_int_distribution<std::size_t>(
        0, std::size(kQueue) - 1)(rng)];
    return s;
}

/// --service analog of run_one: same sampled case, same images, but
/// submitted through a per-seed sat::Service and demanded bit-exact
/// against the same from-scratch serial oracle.  Also pins the service's
/// own invariants: one plan miss per seed, a hit for every later
/// submission, everything completed.
bool run_one_service(const FuzzConfig& c, bool verbose)
{
    const ServiceConfig sc = sample_service(c.seed);
    sat::Service::Options so;
    so.workers = sc.workers;
    so.engine_threads = c.threads;
    so.max_wave = sc.wave;
    so.max_linger = std::chrono::microseconds(sc.linger_us);
    so.max_queue = sc.queue;
    so.policy = sat::Service::AdmissionPolicy::kBlock;
    sat::Service svc(so);

    std::vector<sat::AnyMatrix> images;
    std::vector<std::future<sat::AnyMatrix>> futures;
    for (int b = 0; b < c.batch; ++b) {
        const std::uint64_t fill_seed =
            c.seed * 1000003u + static_cast<std::uint64_t>(b);
        images.push_back(
            random_image(c.pair.in, c.h, c.w, fill_seed, c.fill_hi));
        sat::Service::Request req;
        req.image = images.back();
        req.out = c.pair.out;
        req.algorithm = c.algo;
        req.tile = c.tile;
        futures.push_back(svc.submit(std::move(req)));
    }

    sat::Runtime& oracle = runtime_for(1);
    for (int b = 0; b < c.batch; ++b) {
        const auto ub = static_cast<std::size_t>(b);
        if (!(futures[ub].get() == oracle.reference(images[ub], c.pair.out))) {
            std::cout << "FAIL seed " << c.seed << " batch image " << b
                      << " (service workers " << sc.workers << " wave "
                      << sc.wave << " linger " << sc.linger_us << "us queue "
                      << sc.queue << "): " << describe(c)
                      << "\n  reproduce: satgpu_fuzz --service --seed "
                      << c.seed << '\n';
            return false;
        }
    }

    const auto stats = svc.stats();
    const auto batch = static_cast<std::uint64_t>(c.batch);
    if (stats.plan_misses != 1 || stats.plan_hits != batch - 1 ||
        stats.completed != batch) {
        std::cout << "FAIL seed " << c.seed
                  << ": service counter invariant (misses "
                  << stats.plan_misses << " hits " << stats.plan_hits
                  << " completed " << stats.completed << " for batch "
                  << c.batch << ")\n  reproduce: satgpu_fuzz --service "
                  << "--seed " << c.seed << '\n';
        return false;
    }

    // Metrics invariants: at quiescence (every future joined above) the
    // registry must agree with Stats, every admitted request must have
    // been observed end-to-end, and wave-size histogram mass must account
    // for every submission exactly once.
    const sat::obs::MetricsRegistry& m = svc.metrics();
    const std::uint64_t m_submitted =
        m.counter_total("satgpu_service_submitted_total");
    const std::uint64_t m_completed =
        m.counter_total("satgpu_service_completed_total");
    const std::uint64_t m_rejected =
        m.counter_total("satgpu_service_rejected_total");
    const std::uint64_t m_failed =
        m.counter_total("satgpu_service_failed_total");
    const auto e2e = m.histogram_total("satgpu_service_e2e_us");
    const auto qwait = m.histogram_total("satgpu_service_queue_wait_us");
    const auto wsize = m.histogram_total("satgpu_service_wave_size");
    const bool metrics_ok =
        m_submitted == stats.submitted && m_completed == stats.completed &&
        m_rejected == stats.rejected && m_failed == stats.failed &&
        m_submitted == m_completed + m_rejected + m_failed &&
        e2e.count == m_completed && qwait.count == m_submitted &&
        wsize.count == stats.waves && wsize.sum == m_completed;
    if (!metrics_ok) {
        std::cout << "FAIL seed " << c.seed
                  << ": metrics invariant (submitted " << m_submitted
                  << " completed " << m_completed << " rejected "
                  << m_rejected << " failed " << m_failed << " e2e.count "
                  << e2e.count << " queue_wait.count " << qwait.count
                  << " wave_size count/sum " << wsize.count << "/"
                  << wsize.sum << " vs stats submitted " << stats.submitted
                  << " completed " << stats.completed << " waves "
                  << stats.waves << ")\n  reproduce: satgpu_fuzz --service "
                  << "--seed " << c.seed << '\n';
        return false;
    }
    if (verbose)
        std::cout << "seed " << c.seed << ": " << describe(c)
                  << " via service workers " << sc.workers << " wave "
                  << sc.wave << " linger " << sc.linger_us << "us queue "
                  << sc.queue << " -> " << stats.waves << " wave(s), ok\n";
    return true;
}

/// Query spec for --query-diff, sampled from a SEPARATE rng stream for
/// the same reason as ServiceConfig.  Histogram queries are only servable
/// on the 8u -> 32u pair; other pairs remap that draw to a box filter so
/// every seed stays a valid case.
sat::QuerySpec sample_query(std::uint64_t seed, DtypePair pair)
{
    std::mt19937_64 rng(seed ^ 0x9ce5a7f00d5eedull);
    const int kind = std::uniform_int_distribution<int>(0, 3)(rng);
    const auto radius = std::uniform_int_distribution<std::int64_t>(0, 9)(rng);
    if (kind == 1) {
        constexpr double kFrac[] = {0.5, 0.85, 1.0};
        return sat::AdaptiveThresholdSpec{
            radius, kFrac[std::uniform_int_distribution<std::size_t>(
                        0, std::size(kFrac) - 1)(rng)]};
    }
    if (kind == 2) {
        const auto wh = std::uniform_int_distribution<std::int64_t>(1, 12)(rng);
        const auto ww = std::uniform_int_distribution<std::int64_t>(1, 12)(rng);
        return sat::WindowSumSpec{wh, ww};
    }
    if (kind == 3 && pair.in == Dtype::u8_ && pair.out == Dtype::u32_) {
        constexpr int kBins[] = {2, 4, 8, 16};
        return sat::RegionHistogramSpec{
            kBins[std::uniform_int_distribution<std::size_t>(
                0, std::size(kBins) - 1)(rng)],
            std::min<std::int64_t>(radius, 6)};
    }
    return sat::BoxFilterSpec{radius};
}

/// --query-diff analog of run_one: attach a sampled query to the case and
/// run it through BOTH consumer paths -- the fused tiled pipeline (global
/// SAT never materialized) and materialize-then-consume -- each demanded
/// bit-exact against the serial query oracle.  Exactness holds for float
/// dtypes too: integer-valued fills keep every window sum exactly
/// representable, and both paths apply the same final per-pixel op.
bool run_one_query_diff(const FuzzConfig& c, bool verbose)
{
    // Query pipelines run several kernels per macro tile; cap the sides so
    // the CI sweep stays fast while still covering ragged multi-tile grids.
    FuzzConfig qc = c;
    qc.h = std::min<std::int64_t>(qc.h, 512);
    qc.w = std::min<std::int64_t>(qc.w, 512);
    const sat::QuerySpec query = sample_query(c.seed, c.pair);

    sat::Runtime& rt = runtime_for(qc.threads);
    const auto fused = rt.plan_query({.height = qc.h,
                                      .width = qc.w,
                                      .dtypes = qc.pair,
                                      .algorithm = qc.algo,
                                      .tile = qc.tile,
                                      .query = query,
                                      .query_mode = sat::QueryMode::kFused});
    const auto mat =
        rt.plan_query({.height = qc.h,
                       .width = qc.w,
                       .dtypes = qc.pair,
                       .algorithm = qc.algo,
                       .tile = qc.tile,
                       .query = query,
                       .query_mode = sat::QueryMode::kMaterialize});
    for (int b = 0; b < qc.batch; ++b) {
        const std::uint64_t fill_seed =
            qc.seed * 1000003u + static_cast<std::uint64_t>(b);
        const auto image =
            random_image(qc.pair.in, qc.h, qc.w, fill_seed, qc.fill_hi);
        const auto want = rt.query_reference(image, qc.pair.out, query);
        const auto fused_res = fused.execute(image);
        if (!(fused_res.table == want)) {
            std::cout << "FAIL seed " << qc.seed << " batch image " << b
                      << ": fused query vs oracle: "
                      << sat::query_label(query) << " on " << describe(qc)
                      << " (" << qc.h << 'x' << qc.w << " after clamp)"
                      << "\n  reproduce: satgpu_fuzz --query-diff --seed "
                      << qc.seed << '\n';
            return false;
        }
        const auto mat_res = mat.execute(image);
        if (!(mat_res.table == want)) {
            std::cout << "FAIL seed " << qc.seed << " batch image " << b
                      << ": materialized query vs oracle: "
                      << sat::query_label(query) << " on " << describe(qc)
                      << " (" << qc.h << 'x' << qc.w << " after clamp)"
                      << "\n  reproduce: satgpu_fuzz --query-diff --seed "
                      << qc.seed << '\n';
            return false;
        }
    }
    if (verbose)
        std::cout << "seed " << qc.seed << ": " << sat::query_label(query)
                  << " on " << describe(qc) << " -> fused and materialized "
                  << "both bit-exact vs the query oracle\n";
    return true;
}

/// Streaming-shape knobs for --stream-diff, sampled from a SEPARATE rng
/// stream like ServiceConfig (appending stream knobs to the base rng would
/// re-mean every recorded failing seed of the other modes).
struct StreamConfig {
    std::int64_t window = 1; ///< sliding-window length T
    int extra = 0;           ///< pushes beyond the first full window
    int deltas = 0;          ///< random pixel mutations per successive frame
};

StreamConfig sample_stream(std::uint64_t seed)
{
    std::mt19937_64 rng(seed ^ 0x57ead1ffc0de5ull);
    StreamConfig s;
    s.window = std::uniform_int_distribution<std::int64_t>(1, 8)(rng);
    s.extra = std::uniform_int_distribution<int>(0, 4)(rng);
    s.deltas = std::uniform_int_distribution<int>(1, 64)(rng);
    return s;
}

/// --stream-diff analog of run_one: replay a sampled frame sequence (frame
/// t is frame t-1 with `deltas` random pixel changes, the temporal
/// coherence the incremental path exists for) through an incremental
/// SlidingWindowSat and its from-scratch recompute twin, demanding both
/// aggregates equal the serial window oracle bit for bit after every push
/// -- including the warm-up pushes before the first wraparound and every
/// ring slot reuse after it.
bool run_one_stream_diff(const FuzzConfig& c, bool verbose)
{
    // The recompute twin and the serial oracle both rebuild T SATs per
    // push; cap the sides so the sweep stays fast.  The fill cap was
    // computed for the UNCLAMPED area, so window sums stay exactly
    // representable: T * 256^2 * 15 < 2^24.
    FuzzConfig sc = c;
    sc.h = std::min<std::int64_t>(sc.h, 256);
    sc.w = std::min<std::int64_t>(sc.w, 256);
    // The streaming kernel layer takes a concrete algorithm (kAuto is a
    // Runtime-level policy); remap the kAuto draw like histogram queries
    // remap non-8u pairs.
    if (sc.algo == sat::Algorithm::kAuto)
        sc.algo = sat::Algorithm::kBrltScanRow;
    const StreamConfig st = sample_stream(c.seed);
    std::mt19937_64 delta_rng(c.seed ^ 0xde17a5eedf00d1ull);

    return visit_paper_pair(sc.pair, [&](auto ti, auto to) {
        using Tin = typename decltype(ti)::type;
        using Tout = typename decltype(to)::type;
        simt::Engine::Options eo{.record_history = false};
        eo.num_threads = sc.threads;
        simt::Engine eng(eo);
        const sat::Options opt{.algorithm = sc.algo};
        sat::SlidingWindowSat<Tout, Tin> inc(
            eng, st.window, sc.h, sc.w, opt, sc.tile,
            sat::StreamUpdateMode::kIncremental);
        sat::SlidingWindowSat<Tout, Tin> rec(
            eng, st.window, sc.h, sc.w, opt, sc.tile,
            sat::StreamUpdateMode::kRecompute);

        std::vector<Matrix<Tin>> frames;
        Matrix<Tin> frame(sc.h, sc.w);
        fill_random_ints(frame, sc.seed * 1000003u, sc.fill_hi);
        const std::int64_t pushes = st.window + st.extra;
        for (std::int64_t t = 0; t < pushes; ++t) {
            if (t > 0)
                for (int d = 0; d < st.deltas; ++d) {
                    const auto y = std::uniform_int_distribution<
                        std::int64_t>(0, sc.h - 1)(delta_rng);
                    const auto x = std::uniform_int_distribution<
                        std::int64_t>(0, sc.w - 1)(delta_rng);
                    frame(y, x) = static_cast<Tin>(
                        std::uniform_int_distribution<int>(
                            0, sc.fill_hi)(delta_rng));
                }
            frames.push_back(frame);
            inc.push(frame);
            rec.push(frame);

            std::vector<const Matrix<Tin>*> in_window;
            for (std::int64_t u =
                     std::max<std::int64_t>(0, t - st.window + 1);
                 u <= t; ++u)
                in_window.push_back(&frames[static_cast<std::size_t>(u)]);
            const Matrix<Tout> want = sat::window_sat_serial<Tout, Tin>(
                std::span<const Matrix<Tin>* const>(in_window));
            const auto fail = [&](const char* which) {
                std::cout << "FAIL seed " << sc.seed << " push " << t
                          << ": " << which
                          << " window differs from serial oracle: "
                          << describe(sc) << " (" << sc.h << 'x' << sc.w
                          << " after clamp) window " << st.window
                          << " extra " << st.extra << " deltas "
                          << st.deltas
                          << "\n  reproduce: satgpu_fuzz --stream-diff "
                          << "--seed " << sc.seed << '\n';
                return false;
            };
            if (!(inc.window_table() == want))
                return fail("incremental");
            if (!(rec.window_table() == want))
                return fail("recompute");
        }
        if (verbose)
            std::cout << "seed " << sc.seed << ": " << describe(sc)
                      << " window " << st.window << " extra " << st.extra
                      << " deltas " << st.deltas << " -> " << pushes
                      << " push(es), incremental and recompute bit-exact\n";
        return true;
    });
}

/// --backend-diff analog of run_one: plan the same sampled case twice --
/// once pinned to the simulator, once requesting the native backend --
/// and demand the two tables agree bit for bit (the simulator table is
/// additionally checked against the serial oracle, so agreement can never
/// hide a shared bug).  Configs the native backend refuses (uncertified
/// or unsupported algorithms) resolve back to the simulator; the diff is
/// then trivially exact, but the refusal path itself gets exercised.
bool run_one_backend_diff(const FuzzConfig& c, bool verbose)
{
    sat::Runtime& rt = runtime_for(c.threads);
    const auto sim_plan = rt.plan({.height = c.h,
                                   .width = c.w,
                                   .dtypes = c.pair,
                                   .algorithm = c.algo,
                                   .tile = c.tile,
                                   .backend = sat::Backend::kSim});
    const auto nat_plan = rt.plan({.height = c.h,
                                   .width = c.w,
                                   .dtypes = c.pair,
                                   .algorithm = c.algo,
                                   .tile = c.tile,
                                   .backend = sat::Backend::kNative});
    for (int b = 0; b < c.batch; ++b) {
        const std::uint64_t fill_seed =
            c.seed * 1000003u + static_cast<std::uint64_t>(b);
        const auto image =
            random_image(c.pair.in, c.h, c.w, fill_seed, c.fill_hi);
        const auto sim_res = sim_plan.execute(image);
        const auto nat_res = nat_plan.execute(image);
        if (!(sim_res.table == rt.reference(image, c.pair.out))) {
            std::cout << "FAIL seed " << c.seed << " batch image " << b
                      << ": simulator vs oracle: " << describe(c)
                      << "\n  reproduce: satgpu_fuzz --backend-diff --seed "
                      << c.seed << '\n';
            return false;
        }
        if (!(nat_res.table == sim_res.table)) {
            std::cout << "FAIL seed " << c.seed << " batch image " << b
                      << ": " << sat::to_string(nat_plan.backend())
                      << " backend differs from simulator: " << describe(c)
                      << "\n  resolved algorithms: sim "
                      << sat::to_string(sim_plan.algorithm()) << ", native "
                      << sat::to_string(nat_plan.algorithm())
                      << "\n  reproduce: satgpu_fuzz --backend-diff --seed "
                      << c.seed << '\n';
            return false;
        }
    }
    if (verbose)
        std::cout << "seed " << c.seed << ": " << describe(c) << " -> sim "
                  << sat::to_string(sim_plan.algorithm()) << " vs "
                  << sat::to_string(nat_plan.backend()) << " "
                  << sat::to_string(nat_plan.algorithm())
                  << (nat_plan.certified() ? " (certified)" : "")
                  << ", bit-exact\n";
    return true;
}

/// Run one sampled case; returns true when every batch image matches the
/// serial oracle bit for bit.
bool run_one(const FuzzConfig& c, bool verbose)
{
    sat::Runtime& rt = runtime_for(c.threads);
    const auto plan = rt.plan({.height = c.h,
                               .width = c.w,
                               .dtypes = c.pair,
                               .algorithm = c.algo,
                               .tile = c.tile});
    for (int b = 0; b < c.batch; ++b) {
        // Distinct deterministic fill per batch index.
        const std::uint64_t fill_seed =
            c.seed * 1000003u + static_cast<std::uint64_t>(b);
        const auto image =
            random_image(c.pair.in, c.h, c.w, fill_seed, c.fill_hi);
        const auto res = plan.execute(image);
        if (!(res.table == rt.reference(image, c.pair.out))) {
            std::cout << "FAIL seed " << c.seed << " batch image " << b
                      << ": " << describe(c) << "\n  resolved algorithm: "
                      << sat::to_string(plan.algorithm())
                      << "\n  reproduce: satgpu_fuzz --seed " << c.seed
                      << '\n';
            return false;
        }
    }
    if (verbose)
        std::cout << "seed " << c.seed << ": " << describe(c)
                  << " -> resolved " << sat::to_string(plan.algorithm())
                  << ", ok\n";
    return true;
}

} // namespace

int main(int argc, char** argv)
{
    std::uint64_t seeds = 32;
    std::int64_t single = -1;
    bool service = false;
    bool backend_diff = false;
    bool query_diff = false;
    bool stream_diff = false;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--seeds" && i + 1 < argc) {
            seeds = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--seed" && i + 1 < argc) {
            single = std::strtoll(argv[++i], nullptr, 10);
        } else if (arg == "--service") {
            service = true;
        } else if (arg == "--backend-diff") {
            backend_diff = true;
        } else if (arg == "--query-diff") {
            query_diff = true;
        } else if (arg == "--stream-diff") {
            stream_diff = true;
        } else {
            std::cout
                << "usage: satgpu_fuzz [--service | --backend-diff |\n"
                   "                    --query-diff | --stream-diff]\n"
                   "                   [--seeds N] [--seed S]\n"
                   "  --seeds N: run seeds 0..N-1 (default 32); exit 1 on\n"
                   "             the first differential mismatch\n"
                   "  --seed S:  replay one seed verbosely (the reproduce\n"
                   "             command printed on failure)\n"
                   "  --service: route each case through a sat::Service\n"
                   "             with per-seed worker/wave/linger/queue\n"
                   "             knobs instead of a direct Runtime plan\n"
                   "  --backend-diff: run each case on the simulator AND\n"
                   "             via a Backend::kNative plan; demand the\n"
                   "             tables be bit-identical (and the sim\n"
                   "             table right vs the serial oracle)\n"
                   "  --query-diff: attach a sampled SAT-consumer query to\n"
                   "             each case and run it both fused and\n"
                   "             materialized; demand each output equal\n"
                   "             the serial query oracle bit for bit\n"
                   "  --stream-diff: replay a random frame-delta sequence\n"
                   "             through an incremental sliding-window SAT\n"
                   "             and its from-scratch recompute twin;\n"
                   "             demand both equal the serial window\n"
                   "             oracle bit for bit after every push\n";
            return arg == "--help" || arg == "-h" ? 0 : 2;
        }
    }
    if (static_cast<int>(service) + static_cast<int>(backend_diff) +
            static_cast<int>(query_diff) + static_cast<int>(stream_diff) >
        1) {
        std::cerr << "--service, --backend-diff, --query-diff and "
                     "--stream-diff are mutually exclusive\n";
        return 2;
    }
    const auto run = [&](const FuzzConfig& c, bool verbose) {
        if (backend_diff)
            return run_one_backend_diff(c, verbose);
        if (query_diff)
            return run_one_query_diff(c, verbose);
        if (stream_diff)
            return run_one_stream_diff(c, verbose);
        return service ? run_one_service(c, verbose) : run_one(c, verbose);
    };

    if (single >= 0)
        return run(sample(static_cast<std::uint64_t>(single)), true) ? 0 : 1;

    for (std::uint64_t s = 0; s < seeds; ++s)
        if (!run(sample(s), /*verbose=*/false))
            return 1;
    std::cout << "fuzz: " << seeds << " seed(s) bit-exact against the "
              << (backend_diff
                      ? "serial oracle (native vs simulator diff)\n"
                  : query_diff
                      ? "serial oracle (fused vs materialized query diff)\n"
                  : stream_diff
                      ? "serial oracle (incremental vs recompute stream "
                        "diff)\n"
                      : (service ? "serial oracle (service mode)\n"
                                 : "serial oracle\n"));
    return 0;
}
