// satgpu command-line driver: run any SAT algorithm on the simulated GPU,
// verify it against the serial reference, dump per-kernel event counters
// and model-estimated times for a chosen GPU.
//
// Built on the type-erased runtime (sat/runtime.hpp): the dtype string is
// a runtime tag, not a template ladder, and `--batch N` streams N images
// through one plan with pooled device buffers.
//
//   satgpu_cli --algo brlt-scanrow --size 1024x1024 --dtype 8u32u
//              --gpu p100 --verify   (one command line)
//   satgpu_cli --algo auto --dtype 64f64f -v   (cost-model selection)
//   satgpu_cli --list
#include "core/random_fill.hpp"
#include "core/table_printer.hpp"
#include "model/cost_model.hpp"
#include "model/timing.hpp"
#include "sat/integral_video.hpp"
#include "sat/runtime.hpp"
#include "simt/hazard_checker.hpp"
#include "simt/profiler.hpp"

#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

namespace {

using namespace satgpu;

struct Args {
    sat::Algorithm algo = sat::Algorithm::kBrltScanRow;
    std::int64_t height = 1024;
    std::int64_t width = 1024;
    std::string dtype = "8u32u";
    std::string gpu = "p100";
    int batch = 1;
    bool verify = false;
    bool verbose = false;
    bool unpadded = false;
    bool lf_scan = false;
    std::uint64_t seed = 42;
    int threads = 0; // 0 = one worker per hardware thread
    sat::TileGeometry tile{}; // --tile HxW: macro-tile out-of-core path
    bool check = false;       // --check: warp-synchronous hazard checker
    std::string profile_path; // --profile: per-launch JSON report
    std::string trace_path;   // --trace: chrome://tracing timeline
    std::string hazards_path; // --hazards: hazard report JSON
    sat::Backend backend = sat::Backend::kSim; // --backend: execution backend
    sat::QuerySpec query{}; // --query: fused SAT-consumer workload
    sat::QueryMode query_mode = sat::QueryMode::kAuto; // --query-mode
    std::int64_t stream = 0; // --stream T: sliding-window streaming mode
    std::int64_t frames = 0; // --frames N: frames to push (default 2*T)
    sat::StreamUpdateMode stream_mode =
        sat::StreamUpdateMode::kAuto; // --stream-mode
};

std::optional<sat::StreamUpdateMode> parse_stream_mode(std::string_view s)
{
    if (s == "auto")
        return sat::StreamUpdateMode::kAuto;
    if (s == "incremental")
        return sat::StreamUpdateMode::kIncremental;
    if (s == "recompute")
        return sat::StreamUpdateMode::kRecompute;
    return std::nullopt;
}

std::optional<sat::QueryMode> parse_query_mode(std::string_view s)
{
    if (s == "auto")
        return sat::QueryMode::kAuto;
    if (s == "fused")
        return sat::QueryMode::kFused;
    if (s == "materialize")
        return sat::QueryMode::kMaterialize;
    return std::nullopt;
}

std::optional<sat::Backend> parse_backend(std::string_view s)
{
    if (s == "sim")
        return sat::Backend::kSim;
    if (s == "native")
        return sat::Backend::kNative;
    if (s == "auto")
        return sat::Backend::kAuto;
    return std::nullopt;
}

std::optional<sat::Algorithm> parse_algo(std::string_view s)
{
    if (s == "auto")
        return sat::Algorithm::kAuto;
    for (auto a : sat::kAllAlgorithms) {
        std::string name{sat::to_string(a)};
        for (char& c : name)
            c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        if (s == name)
            return a;
    }
    return std::nullopt;
}

void usage()
{
    std::cout <<
        "usage: satgpu_cli [options]\n"
        "  --algo A      brlt-scanrow | scanrow-brlt | scanrowcolumn |\n"
        "                opencv | npp | naivescanscan | scantransposescan |\n"
        "                auto (cost-model pick; default brlt-scanrow)\n"
        "  --size HxW    matrix size (default 1024x1024)\n"
        "  --dtype D     8u32s | 8u32u | 8u32f | 32s32s | 32u32u | 32f32f |\n"
        "                64f64f (default 8u32u)\n"
        "  --gpu G       m40 | p100 | v100 (default p100)\n"
        "  --batch N     run N images (seeds seed..seed+N-1) through ONE\n"
        "                plan, reusing pooled device buffers (default 1)\n"
        "  --tile HxW    execute out of core in HxW macro-tiles (multiples\n"
        "                of 32); pooled memory stays O(tile area) and the\n"
        "                result is bit-identical to the untiled path\n"
        "  --verify      check every result against the serial reference\n"
        "  -v|--verbose  print cost-model scores (for --algo auto), the\n"
        "                plan's workspace, and buffer-pool statistics\n"
        "  --unpadded    use the 32x32 (bank-conflicting) BRLT staging\n"
        "  --lf          use the Ladner-Fischer warp scan\n"
        "  --seed N      input seed (default 42)\n"
        "  --threads N   host threads simulating blocks; 0 = all hardware\n"
        "                threads, 1 = sequential (default 0; results and\n"
        "                counters are identical for every value)\n"
        "  --backend B   sim | native | auto (default sim).  native runs\n"
        "                hazard-certified plans as plain vectorized loops\n"
        "                (bit-identical tables, no instrumentation) and\n"
        "                falls back to the simulator when the plan is\n"
        "                uncertified or --check/--profile is on\n"
        "  --query Q     run a SAT-consumer query instead of emitting the\n"
        "                table: box:r=N | thresh:r=N[,f=F] | wsum:h=H,w=W |\n"
        "                hist:b=B,r=N (hist needs --dtype 8u32u).  The\n"
        "                fused path never materializes the global SAT\n"
        "  --query-mode M  auto | fused | materialize (default auto: the\n"
        "                traffic forecast picks the cheaper consumer path)\n"
        "  --stream T    maintain a sliding-window aggregate SAT over the\n"
        "                last T frames of a synthetic video instead of a\n"
        "                single image; prints per-push device traffic and\n"
        "                the incremental-vs-recompute forecast\n"
        "  --frames N    frames to push in --stream mode (default 2*T)\n"
        "  --stream-mode M  auto | incremental | recompute (default auto:\n"
        "                the closed-form traffic forecast picks; see\n"
        "                docs/streaming.md)\n"
        "  --check       run the warp-synchronous hazard checker\n"
        "                (racecheck/synccheck analog) on every launch and\n"
        "                report findings; exit 1 if any hazard is found\n"
        "  --hazards F   write the hazard report as JSON to F (implies\n"
        "                --check)\n"
        "  --profile F   write a per-launch profile report (phase ranges,\n"
        "                hotspot tables, virtual timeline) as JSON to F\n"
        "  --trace F     write the virtual timeline as a chrome://tracing /\n"
        "                Perfetto trace-event JSON to F\n"
        "  --list        list algorithms and exit\n";
}

std::optional<Args> parse(int argc, char** argv)
{
    Args a;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--list") {
            for (auto algo : sat::kAllAlgorithms)
                std::cout << sat::to_string(algo) << '\n';
            std::cout << "Auto\n";
            std::exit(0);
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else if (arg == "--algo") {
            const char* v = next();
            if (!v)
                return std::nullopt;
            auto algo = parse_algo(v);
            if (!algo) {
                std::cerr << "unknown algorithm: " << v << '\n';
                return std::nullopt;
            }
            a.algo = *algo;
        } else if (arg == "--size") {
            const char* v = next();
            if (!v || std::sscanf(v, "%ldx%ld", &a.height, &a.width) != 2 ||
                a.height <= 0 || a.width <= 0) {
                std::cerr << "bad --size (want HxW)\n";
                return std::nullopt;
            }
        } else if (arg == "--dtype") {
            const char* v = next();
            if (!v)
                return std::nullopt;
            a.dtype = v;
        } else if (arg == "--gpu") {
            const char* v = next();
            if (!v)
                return std::nullopt;
            a.gpu = v;
        } else if (arg == "--batch") {
            const char* v = next();
            if (!v || std::sscanf(v, "%d", &a.batch) != 1 || a.batch < 1) {
                std::cerr << "bad --batch (want a positive count)\n";
                return std::nullopt;
            }
        } else if (arg == "--tile") {
            const char* v = next();
            auto tile = v ? sat::parse_tile_geometry(v) : std::nullopt;
            if (tile && (tile->tile_h % 32 != 0 || tile->tile_w % 32 != 0))
                tile.reset();
            if (!tile) {
                std::cerr << "bad --tile (want HxW, positive multiples of "
                             "32)\n";
                return std::nullopt;
            }
            a.tile = *tile;
        } else if (arg == "--verify") {
            a.verify = true;
        } else if (arg == "-v" || arg == "--verbose") {
            a.verbose = true;
        } else if (arg == "--unpadded") {
            a.unpadded = true;
        } else if (arg == "--lf") {
            a.lf_scan = true;
        } else if (arg == "--seed") {
            const char* v = next();
            if (!v)
                return std::nullopt;
            a.seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--threads") {
            const char* v = next();
            if (!v || std::sscanf(v, "%d", &a.threads) != 1 ||
                a.threads < 0) {
                std::cerr << "bad --threads (want a non-negative count)\n";
                return std::nullopt;
            }
        } else if (arg == "--backend") {
            const char* v = next();
            auto b = v ? parse_backend(v) : std::nullopt;
            if (!b) {
                std::cerr << "bad --backend (want sim|native|auto)\n";
                return std::nullopt;
            }
            a.backend = *b;
        } else if (arg == "--query") {
            const char* v = next();
            auto q = v ? sat::parse_query_spec(v) : std::nullopt;
            if (!q || !sat::query_enabled(*q)) {
                std::cerr << "bad --query (want box:r=N | thresh:r=N[,f=F] "
                             "| wsum:h=H,w=W | hist:b=B,r=N)\n";
                return std::nullopt;
            }
            a.query = *q;
        } else if (arg == "--query-mode") {
            const char* v = next();
            auto m = v ? parse_query_mode(v) : std::nullopt;
            if (!m) {
                std::cerr << "bad --query-mode (want "
                             "auto|fused|materialize)\n";
                return std::nullopt;
            }
            a.query_mode = *m;
        } else if (arg == "--stream") {
            const char* v = next();
            if (!v || std::sscanf(v, "%ld", &a.stream) != 1 ||
                a.stream < 1) {
                std::cerr << "bad --stream (want a positive window)\n";
                return std::nullopt;
            }
        } else if (arg == "--frames") {
            const char* v = next();
            if (!v || std::sscanf(v, "%ld", &a.frames) != 1 ||
                a.frames < 1) {
                std::cerr << "bad --frames (want a positive count)\n";
                return std::nullopt;
            }
        } else if (arg == "--stream-mode") {
            const char* v = next();
            auto m = v ? parse_stream_mode(v) : std::nullopt;
            if (!m) {
                std::cerr << "bad --stream-mode (want "
                             "auto|incremental|recompute)\n";
                return std::nullopt;
            }
            a.stream_mode = *m;
        } else if (arg == "--check") {
            a.check = true;
        } else if (arg == "--hazards") {
            const char* v = next();
            if (!v)
                return std::nullopt;
            a.hazards_path = v;
            a.check = true;
        } else if (arg == "--profile") {
            const char* v = next();
            if (!v)
                return std::nullopt;
            a.profile_path = v;
        } else if (arg == "--trace") {
            const char* v = next();
            if (!v)
                return std::nullopt;
            a.trace_path = v;
        } else {
            std::cerr << "unknown option: " << arg << '\n';
            return std::nullopt;
        }
    }
    return a;
}

/// --stream T: push a synthetic video through SlidingWindowSat and report
/// the resolved update mode, the closed-form traffic forecast, and the
/// measured per-push device bytes (docs/streaming.md).
int run_stream(const Args& args, DtypePair pair, const model::GpuSpec& gpu)
{
    const std::int64_t window = args.stream;
    const std::int64_t frames =
        args.frames > 0 ? args.frames : 2 * window;
    const double area =
        static_cast<double>(args.height) * static_cast<double>(args.width);

    sat::Algorithm algo = args.algo;
    if (algo == sat::Algorithm::kAuto) {
        // Probe plan: let the cost model pick exactly as the one-shot path
        // would, then drive the stream with the winner.
        sat::Runtime rt({.record_history = false,
                         .num_threads = args.threads});
        const auto probe = rt.plan({.height = args.height,
                                    .width = args.width,
                                    .dtypes = pair,
                                    .algorithm = sat::Algorithm::kAuto,
                                    .gpu = &gpu,
                                    .backend = args.backend});
        algo = probe.algorithm();
        std::cout << "auto selected: " << sat::to_string(algo)
                  << " (cost model, " << gpu.name << ")\n";
    }

    const auto mode = sat::resolve_stream_mode(
        args.stream_mode, pair, args.height, args.width, window);
    const auto forecast = model::predict_stream_traffic(
        pair, args.height, args.width, window);
    std::cout << "stream: window=" << window << " frames=" << frames
              << " mode=" << sat::to_string(mode);
    if (args.stream_mode == sat::StreamUpdateMode::kAuto)
        std::cout << " (auto: forecast "
                  << TablePrinter::fmt(forecast.incremental_bytes / area, 1)
                  << " B/px incremental vs "
                  << TablePrinter::fmt(forecast.recompute_bytes / area, 1)
                  << " B/px recompute)";
    std::cout << '\n';

    return visit_paper_pair(pair, [&](auto ti, auto to) -> int {
        using Tin = typename decltype(ti)::type;
        using Tout = typename decltype(to)::type;
        simt::Engine::Options eo{.record_history = false};
        eo.num_threads = args.threads;
        simt::Engine eng(eo);
        const sat::Options opt{
            .algorithm = algo,
            .warp_scan = args.lf_scan ? scan::WarpScanKind::kLadnerFischer
                                      : scan::WarpScanKind::kKoggeStone,
            .padded_smem = !args.unpadded,
            .backend = args.backend};
        sat::SlidingWindowSat<Tout, Tin> win(eng, window, args.height,
                                             args.width, opt, args.tile,
                                             mode);

        std::vector<Matrix<Tin>> history;
        TablePrinter t({"push", "launches", "device bytes", "B/px",
                        "occupancy", "ring bytes"});
        std::uint64_t steady_bytes = 0;
        std::int64_t steady_pushes = 0;
        for (std::int64_t f = 0; f < frames; ++f) {
            Matrix<Tin> frame(args.height, args.width);
            fill_random(frame, args.seed + static_cast<std::uint64_t>(f));
            const auto& launches = win.push(frame);
            const std::uint64_t bytes = sat::device_bytes(launches);
            if (f >= window) { // ring full: steady-state pushes
                steady_bytes += bytes;
                ++steady_pushes;
            }
            t.add_row({std::to_string(f),
                       std::to_string(launches.size()),
                       TablePrinter::fmt_int(
                           static_cast<std::int64_t>(bytes)),
                       TablePrinter::fmt(static_cast<double>(bytes) / area,
                                         2),
                       std::to_string(win.occupancy()),
                       TablePrinter::fmt_int(static_cast<std::int64_t>(
                           win.ring_bytes()))});
            if (args.verify) {
                history.push_back(std::move(frame));
                if (static_cast<std::int64_t>(history.size()) > window)
                    history.erase(history.begin());
            }
        }
        t.print(std::cout);
        if (steady_pushes > 0) {
            const double per_push = static_cast<double>(steady_bytes) /
                                    static_cast<double>(steady_pushes);
            std::cout << "\nsteady state: "
                      << TablePrinter::fmt(per_push, 0)
                      << " device bytes/push ("
                      << TablePrinter::fmt(per_push / area, 2) << " B/px, "
                      << steady_pushes << " full-window pushes)\n";
            if (steady_bytes == 0)
                std::cout << "(the native backend carries no byte "
                             "counters; use --backend sim to meter "
                             "traffic)\n";
        }

        if (args.verify) {
            std::vector<const Matrix<Tin>*> ptrs;
            ptrs.reserve(history.size());
            for (const auto& h : history)
                ptrs.push_back(&h);
            const Matrix<Tout> want = sat::window_sat_serial<Tout, Tin>(
                std::span<const Matrix<Tin>* const>(ptrs));
            const bool ok = win.window_table() == want;
            std::cout << "verification vs window_sat_serial: "
                      << (ok ? "PASS" : "FAIL") << '\n';
            return ok ? 0 : 1;
        }
        return 0;
    });
}

int run(const Args& args)
{
    const auto pair = parse_dtype_pair(args.dtype);
    if (!pair || !sat::find_kernel(*pair)) {
        std::cerr << "unknown or unsupported dtype pair: " << args.dtype
                  << '\n';
        return 2;
    }

    const model::GpuSpec* gpu = &model::tesla_p100();
    if (args.gpu == "v100")
        gpu = &model::tesla_v100();
    else if (args.gpu == "m40")
        gpu = &model::tesla_m40();
    else if (args.gpu != "p100") {
        std::cerr << "unknown gpu: " << args.gpu << '\n';
        return 2;
    }

    if (args.stream > 0) {
        if (sat::query_enabled(args.query)) {
            std::cerr << "--stream and --query are mutually exclusive\n";
            return 2;
        }
        return run_stream(args, *pair, *gpu);
    }

    const bool profiling =
        !args.profile_path.empty() || !args.trace_path.empty();
    sat::Runtime rt({.record_history = false,
                     .num_threads = args.threads,
                     .profile = profiling});

    const sat::PlanRequest preq{.height = args.height,
                                .width = args.width,
                                .dtypes = *pair,
                                .algorithm = args.algo,
                                .warp_scan =
                                    args.lf_scan
                                        ? scan::WarpScanKind::kLadnerFischer
                                        : scan::WarpScanKind::kKoggeStone,
                                .padded_smem = !args.unpadded,
                                .gpu = gpu,
                                .tile = args.tile,
                                .check = args.check,
                                .backend = args.backend,
                                .query = args.query,
                                .query_mode = args.query_mode};
    const bool has_query = sat::query_enabled(args.query);
    const auto plan = has_query ? rt.plan_query(preq) : rt.plan(preq);

    if (has_query)
        std::cout << "query: " << sat::query_label(args.query) << " ("
                  << (plan.query_fused() ? "fused tiled pipeline, global "
                                           "SAT never materialized"
                                         : "materialize then consume")
                  << ")\n";
    if (args.algo == sat::Algorithm::kAuto)
        std::cout << "auto selected: " << sat::to_string(plan.algorithm())
                  << " (cost model, " << gpu->name << ")\n";
    if (args.backend != sat::Backend::kSim)
        std::cout << "backend: " << sat::to_string(plan.backend())
                  << (plan.certified() ? " (hazard-certified)"
                                       : " (uncertified; simulator "
                                         "fallback)")
                  << '\n';
    if (args.verbose) {
        if (!plan.scores().empty()) {
            // With --backend sim the predicted column is modeled GPU time;
            // otherwise every candidate is ranked by host wall time under
            // the backend that would actually run it.
            TablePrinter scores({"candidate", "backend", "certified",
                                 "predicted time (us)"});
            for (const auto& s : plan.scores())
                scores.add_row({std::string(sat::to_string(s.algo)),
                                std::string(sat::to_string(s.backend)),
                                s.certified ? "yes" : "no",
                                TablePrinter::fmt(s.predicted_us, 2)});
            scores.print(std::cout);
        }
        std::cout << "plan workspace: " << plan.workspace_bytes()
                  << " device bytes per image\n\n";
    }

    std::vector<sat::AnyMatrix> images;
    images.reserve(static_cast<std::size_t>(args.batch));
    for (int i = 0; i < args.batch; ++i)
        images.push_back(sat::AnyMatrix::random(
            pair->in, args.height, args.width,
            args.seed + static_cast<std::uint64_t>(i)));
    const auto results = plan.execute_batch(images);
    const auto& res = results.front();

    auto write_json = [](const std::string& path, auto&& writer) {
        std::ofstream os(path, std::ios::binary);
        if (!os) {
            std::cerr << "cannot open " << path << " for writing\n";
            return false;
        }
        writer(os);
        return bool(os);
    };
    if (!args.profile_path.empty()) {
        if (!write_json(args.profile_path, [&](std::ostream& os) {
                simt::write_profile_json(os, res.launches);
            }))
            return 2;
        std::cout << "profile report: " << args.profile_path << '\n';
    }
    if (!args.trace_path.empty()) {
        if (!write_json(args.trace_path, [&](std::ostream& os) {
                simt::write_chrome_trace_json(os, res.launches);
            }))
            return 2;
        std::cout << "chrome trace:   " << args.trace_path << '\n';
    }
    if (!args.hazards_path.empty()) {
        if (!write_json(args.hazards_path, [&](std::ostream& os) {
                simt::write_hazard_json(os, res.launches);
            }))
            return 2;
        std::cout << "hazard report:  " << args.hazards_path << '\n';
    }

    std::cout << sat::to_string(plan.algorithm()) << " " << args.dtype << " "
              << args.height << "x" << args.width << " on " << gpu->name;
    if (args.tile.enabled())
        std::cout << " (tiled " << args.tile.tile_h << "x" << args.tile.tile_w
                  << ")";
    if (args.batch > 1)
        std::cout << " (batch of " << args.batch << " through one plan)";
    std::cout << "\n\n";
    TablePrinter t({"kernel", "grid", "block", "gld sectors", "gst sectors",
                    "smem trans", "shuffles", "adds", "barriers",
                    "est. time (us)"});
    double total = 0;
    for (const auto& l : res.launches) {
        const auto bt = model::estimate_kernel_time(*gpu, l);
        total += bt.total_us;
        auto dim = [](simt::Dim3 d) {
            return std::to_string(d.x) + "," + std::to_string(d.y) + "," +
                   std::to_string(d.z);
        };
        t.add_row({l.info.name, dim(l.config.grid), dim(l.config.block),
                   TablePrinter::fmt_int(static_cast<std::int64_t>(
                       l.counters.gmem_ld_sectors)),
                   TablePrinter::fmt_int(static_cast<std::int64_t>(
                       l.counters.gmem_st_sectors)),
                   TablePrinter::fmt_int(static_cast<std::int64_t>(
                       l.counters.smem_trans())),
                   TablePrinter::fmt_int(static_cast<std::int64_t>(
                       l.counters.warp_shfl)),
                   TablePrinter::fmt_int(static_cast<std::int64_t>(
                       l.counters.lane_add)),
                   TablePrinter::fmt_int(static_cast<std::int64_t>(
                       l.counters.barriers)),
                   TablePrinter::fmt(bt.total_us, 2)});
    }
    t.print(std::cout);
    std::cout << "\ntotal estimated time: " << TablePrinter::fmt(total, 2)
              << " us per image\n";

    if (has_query) {
        std::uint64_t moved = 0;
        for (const auto& l : res.launches)
            moved += l.counters.gmem_bytes_ld + l.counters.gmem_bytes_st;
        if (moved != 0) // the native backend carries no byte counters
            std::cout << "device traffic: " << moved << " bytes ("
                      << TablePrinter::fmt(
                             static_cast<double>(moved) /
                                 (static_cast<double>(args.height) *
                                  static_cast<double>(args.width)),
                             2)
                      << " B/px)\n";
    }

    if (args.verbose) {
        const auto ps = rt.pool_stats();
        std::cout << "buffer pool: " << ps.allocations << " allocations, "
                  << ps.reuses << " reuses, " << ps.bytes_allocated
                  << " bytes allocated\n";
    }

    bool hazard_free = true;
    if (args.check) {
        std::uint64_t total_hz = 0;
        for (const auto& res_i : results)
            total_hz += simt::total_hazards(res_i.launches);
        if (total_hz == 0) {
            std::cout << "hazard check: clean ("
                      << results.size() * res.launches.size()
                      << " launches)\n";
        } else {
            hazard_free = false;
            std::cout << "hazard check: " << total_hz << " hazard(s)\n";
            for (const auto& l : res.launches) {
                if (!l.hazards || l.hazards->clean())
                    continue;
                for (const auto& h : l.hazards->hazards) {
                    std::cout << "  [" << l.info.name << "] "
                              << simt::to_string(h.kind) << " at " << h.site;
                    if (!h.other_site.empty())
                        std::cout << " (conflicts with " << h.other_site
                                  << ")";
                    if (!h.note.empty())
                        std::cout << " on '" << h.note << "'";
                    std::cout << " x" << h.count << '\n';
                }
            }
        }
    }

    if (args.verify) {
        bool all_ok = true;
        for (std::size_t i = 0; i < results.size(); ++i) {
            const auto want =
                has_query
                    ? rt.query_reference(images[i], pair->out, args.query)
                    : rt.reference(images[i], pair->out);
            if (!(results[i].table == want)) {
                all_ok = false;
                std::cout << "image " << i << ": FAIL\n";
            }
        }
        std::cout << "verification vs serial reference: "
                  << (all_ok ? "PASS" : "FAIL")
                  << (args.batch > 1
                          ? " (" + std::to_string(args.batch) + " images)"
                          : "")
                  << '\n';
        return all_ok && hazard_free ? 0 : 1;
    }
    return hazard_free ? 0 : 1;
}

} // namespace

int main(int argc, char** argv)
{
    const auto args = parse(argc, argv);
    if (!args) {
        usage();
        return 2;
    }
    return run(*args);
}
