// satgpu command-line driver: run any SAT algorithm on the simulated GPU,
// verify it against the serial reference, dump per-kernel event counters
// and model-estimated times for a chosen GPU.
//
//   satgpu_cli --algo brlt-scanrow --size 1024x1024 --dtype 8u32u
//              --gpu p100 --verify   (one command line)
//   satgpu_cli --list
#include "core/random_fill.hpp"
#include "core/table_printer.hpp"
#include "model/timing.hpp"
#include "sat/sat.hpp"
#include "simt/profiler.hpp"

#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

namespace {

using namespace satgpu;

struct Args {
    sat::Algorithm algo = sat::Algorithm::kBrltScanRow;
    std::int64_t height = 1024;
    std::int64_t width = 1024;
    std::string dtype = "8u32u";
    std::string gpu = "p100";
    bool verify = false;
    bool unpadded = false;
    bool lf_scan = false;
    std::uint64_t seed = 42;
    int threads = 0; // 0 = one worker per hardware thread
    std::string profile_path; // --profile: per-launch JSON report
    std::string trace_path;   // --trace: chrome://tracing timeline
};

std::optional<sat::Algorithm> parse_algo(std::string_view s)
{
    for (auto a : sat::kAllAlgorithms) {
        std::string name{sat::to_string(a)};
        for (char& c : name)
            c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        if (s == name)
            return a;
    }
    return std::nullopt;
}

void usage()
{
    std::cout <<
        "usage: satgpu_cli [options]\n"
        "  --algo A      brlt-scanrow | scanrow-brlt | scanrowcolumn |\n"
        "                opencv | npp | naivescanscan | scantransposescan\n"
        "                (default brlt-scanrow)\n"
        "  --size HxW    matrix size (default 1024x1024)\n"
        "  --dtype D     8u32s | 8u32u | 8u32f | 32s32s | 32u32u | 32f32f |\n"
        "                64f64f (default 8u32u)\n"
        "  --gpu G       m40 | p100 | v100 (default p100)\n"
        "  --verify      check the result against the serial reference\n"
        "  --unpadded    use the 32x32 (bank-conflicting) BRLT staging\n"
        "  --lf          use the Ladner-Fischer warp scan\n"
        "  --seed N      input seed (default 42)\n"
        "  --threads N   host threads simulating blocks; 0 = all hardware\n"
        "                threads, 1 = sequential (default 0; results and\n"
        "                counters are identical for every value)\n"
        "  --profile F   write a per-launch profile report (phase ranges,\n"
        "                hotspot tables, virtual timeline) as JSON to F\n"
        "  --trace F     write the virtual timeline as a chrome://tracing /\n"
        "                Perfetto trace-event JSON to F\n"
        "  --list        list algorithms and exit\n";
}

std::optional<Args> parse(int argc, char** argv)
{
    Args a;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        auto next = [&]() -> const char* {
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--list") {
            for (auto algo : sat::kAllAlgorithms)
                std::cout << sat::to_string(algo) << '\n';
            std::exit(0);
        } else if (arg == "--help" || arg == "-h") {
            usage();
            std::exit(0);
        } else if (arg == "--algo") {
            const char* v = next();
            if (!v)
                return std::nullopt;
            auto algo = parse_algo(v);
            if (!algo) {
                std::cerr << "unknown algorithm: " << v << '\n';
                return std::nullopt;
            }
            a.algo = *algo;
        } else if (arg == "--size") {
            const char* v = next();
            if (!v || std::sscanf(v, "%ldx%ld", &a.height, &a.width) != 2 ||
                a.height <= 0 || a.width <= 0) {
                std::cerr << "bad --size (want HxW)\n";
                return std::nullopt;
            }
        } else if (arg == "--dtype") {
            const char* v = next();
            if (!v)
                return std::nullopt;
            a.dtype = v;
        } else if (arg == "--gpu") {
            const char* v = next();
            if (!v)
                return std::nullopt;
            a.gpu = v;
        } else if (arg == "--verify") {
            a.verify = true;
        } else if (arg == "--unpadded") {
            a.unpadded = true;
        } else if (arg == "--lf") {
            a.lf_scan = true;
        } else if (arg == "--seed") {
            const char* v = next();
            if (!v)
                return std::nullopt;
            a.seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--threads") {
            const char* v = next();
            if (!v || std::sscanf(v, "%d", &a.threads) != 1 ||
                a.threads < 0) {
                std::cerr << "bad --threads (want a non-negative count)\n";
                return std::nullopt;
            }
        } else if (arg == "--profile") {
            const char* v = next();
            if (!v)
                return std::nullopt;
            a.profile_path = v;
        } else if (arg == "--trace") {
            const char* v = next();
            if (!v)
                return std::nullopt;
            a.trace_path = v;
        } else {
            std::cerr << "unknown option: " << arg << '\n';
            return std::nullopt;
        }
    }
    return a;
}

template <typename Tin, typename Tout>
int run(const Args& args)
{
    Matrix<Tin> img(args.height, args.width);
    fill_random(img, args.seed);

    sat::Options opt;
    opt.algorithm = args.algo;
    opt.padded_smem = !args.unpadded;
    if (args.lf_scan)
        opt.warp_scan = scan::WarpScanKind::kLadnerFischer;

    const bool profiling =
        !args.profile_path.empty() || !args.trace_path.empty();
    simt::Engine eng({.num_threads = args.threads, .profile = profiling});
    const auto res = sat::compute_sat<Tout>(eng, img, opt);

    auto write_json = [](const std::string& path, auto&& writer) {
        std::ofstream os(path, std::ios::binary);
        if (!os) {
            std::cerr << "cannot open " << path << " for writing\n";
            return false;
        }
        writer(os);
        return bool(os);
    };
    if (!args.profile_path.empty()) {
        if (!write_json(args.profile_path, [&](std::ostream& os) {
                simt::write_profile_json(os, res.launches);
            }))
            return 2;
        std::cout << "profile report: " << args.profile_path << '\n';
    }
    if (!args.trace_path.empty()) {
        if (!write_json(args.trace_path, [&](std::ostream& os) {
                simt::write_chrome_trace_json(os, res.launches);
            }))
            return 2;
        std::cout << "chrome trace:   " << args.trace_path << '\n';
    }

    const model::GpuSpec* gpu = &model::tesla_p100();
    if (args.gpu == "v100")
        gpu = &model::tesla_v100();
    else if (args.gpu == "m40")
        gpu = &model::tesla_m40();
    else if (args.gpu != "p100") {
        std::cerr << "unknown gpu: " << args.gpu << '\n';
        return 2;
    }

    std::cout << sat::to_string(args.algo) << " " << args.dtype << " "
              << args.height << "x" << args.width << " on " << gpu->name
              << "\n\n";
    TablePrinter t({"kernel", "grid", "block", "gld sectors", "gst sectors",
                    "smem trans", "shuffles", "adds", "barriers",
                    "est. time (us)"});
    double total = 0;
    for (const auto& l : res.launches) {
        const auto bt = model::estimate_kernel_time(*gpu, l);
        total += bt.total_us;
        auto dim = [](simt::Dim3 d) {
            return std::to_string(d.x) + "," + std::to_string(d.y) + "," +
                   std::to_string(d.z);
        };
        t.add_row({l.info.name, dim(l.config.grid), dim(l.config.block),
                   TablePrinter::fmt_int(static_cast<std::int64_t>(
                       l.counters.gmem_ld_sectors)),
                   TablePrinter::fmt_int(static_cast<std::int64_t>(
                       l.counters.gmem_st_sectors)),
                   TablePrinter::fmt_int(static_cast<std::int64_t>(
                       l.counters.smem_trans())),
                   TablePrinter::fmt_int(static_cast<std::int64_t>(
                       l.counters.warp_shfl)),
                   TablePrinter::fmt_int(static_cast<std::int64_t>(
                       l.counters.lane_add)),
                   TablePrinter::fmt_int(static_cast<std::int64_t>(
                       l.counters.barriers)),
                   TablePrinter::fmt(bt.total_us, 2)});
    }
    t.print(std::cout);
    std::cout << "\ntotal estimated time: " << TablePrinter::fmt(total, 2)
              << " us\n";

    if (args.verify) {
        const auto want = sat::sat_serial<Tout>(img);
        const bool ok = res.table == want;
        std::cout << "verification vs serial reference: "
                  << (ok ? "PASS" : "FAIL") << '\n';
        return ok ? 0 : 1;
    }
    return 0;
}

} // namespace

int main(int argc, char** argv)
{
    const auto args = parse(argc, argv);
    if (!args) {
        usage();
        return 2;
    }
    const std::string& d = args->dtype;
    if (d == "8u32s")
        return run<satgpu::u8, satgpu::i32>(*args);
    if (d == "8u32u")
        return run<satgpu::u8, satgpu::u32>(*args);
    if (d == "8u32f")
        return run<satgpu::u8, satgpu::f32>(*args);
    if (d == "32s32s")
        return run<satgpu::i32, satgpu::i32>(*args);
    if (d == "32u32u")
        return run<satgpu::u32, satgpu::u32>(*args);
    if (d == "32f32f")
        return run<satgpu::f32, satgpu::f32>(*args);
    if (d == "64f64f")
        return run<satgpu::f64, satgpu::f64>(*args);
    std::cerr << "unknown dtype: " << d << '\n';
    return 2;
}
