// satgpu_serve: load driver for the concurrent sat::Service.
//
// Two phases, both optional:
//
//  * Load phase (--qps / --duration): replays an open-loop request trace
//    -- a paced stream of mixed or uniform shapes/dtype pairs -- through a
//    Service, reporting wall-clock p50/p99 latency, throughput, and the
//    service's own counters (plan-cache hits, waves, fusion, peak queue
//    depth).  --verify additionally demands every returned table be
//    bit-exact against the serial CPU oracle.
//
//  * Compare phase (--compare): the coalescing claim.  Runs the same
//    8-image 512x512 8u->32u burst through max_wave=1 and max_wave=8
//    services and reports the MODELED GPU time of each (the timing model
//    over the launches each service actually issued).  The modeled
//    speedup is deterministic -- launch counters are machine independent
//    -- and lands around 1.65x: a fused wave pays the fixed per-launch
//    overhead once per kernel pass instead of once per image.
//
// Wall-clock numbers vary by machine; modeled numbers and every counter do
// not.  CI therefore diffs BENCH_serve.json (emitted by --json) by schema,
// not by value.
#include "../bench/bench_common.hpp"
#include "core/random_fill.hpp"
#include "sat/service.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace {

using namespace satgpu;
using Clock = std::chrono::steady_clock;

[[nodiscard]] double us_between(Clock::time_point a, Clock::time_point b)
{
    return std::chrono::duration<double, std::micro>(b - a).count();
}

/// One trace template: the shape + dtype pair a request is stamped from.
struct Template {
    std::int64_t h;
    std::int64_t w;
    DtypePair pair;
};

/// Small shapes: the simulator executes on host CPUs, so serving-scale
/// traces need requests in the low-millisecond range.
[[nodiscard]] std::vector<Template> make_trace(std::string_view kind)
{
    if (kind == "same")
        return {{128, 128, {Dtype::u8_, Dtype::u32_}}};
    return {
        {128, 128, {Dtype::u8_, Dtype::u32_}},
        {96, 160, {Dtype::u8_, Dtype::i32_}},
        {256, 256, {Dtype::u8_, Dtype::u32_}},
        {64, 64, {Dtype::f32_, Dtype::f32_}},
        {160, 96, {Dtype::u32_, Dtype::u32_}},
    };
}

[[nodiscard]] sat::AnyMatrix random_image(Dtype t, std::int64_t h,
                                          std::int64_t w, std::uint64_t seed)
{
    sat::AnyMatrix m = sat::AnyMatrix::zeros(t, h, w);
    // Cap 15 keeps f32 tables exactly representable at these areas.
    switch (t) {
    case Dtype::u8_: fill_random_ints(m.as<u8>(), seed, 15); break;
    case Dtype::i32_: fill_random_ints(m.as<i32>(), seed, 15); break;
    case Dtype::u32_: fill_random_ints(m.as<u32>(), seed, 15); break;
    case Dtype::f32_: fill_random_ints(m.as<f32>(), seed, 15); break;
    case Dtype::f64_: fill_random_ints(m.as<f64>(), seed, 15); break;
    }
    return m;
}

/// Observability outputs of the load phase (all optional).
struct ObsConfig {
    std::string metrics_out; ///< satgpu-metrics-v1 JSON snapshot file
    std::string trace_out;   ///< merged Chrome/Perfetto trace file
    std::string events_out;  ///< admission-decision JSONL file
    /// > 0: rewrite metrics_out every this-many ms DURING the load (the
    /// snapshot loop a scraper would drive), plus the final snapshot.
    long metrics_every_ms = 0;
    bool virtual_time = false;

    [[nodiscard]] bool any() const
    {
        return !metrics_out.empty() || !trace_out.empty() ||
               !events_out.empty();
    }
};

void write_file_or_die(const std::string& path, const std::string& bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    if (!os) {
        std::cerr << "cannot open " << path << " for writing\n";
        std::exit(2);
    }
    os << bytes;
}

struct LoadReport {
    std::uint64_t requests = 0;
    std::uint64_t verified = 0;
    std::uint64_t mismatches = 0;
    double elapsed_us = 0;
    double throughput_rps = 0;
    double p50_us = 0;
    double p99_us = 0;
    double mean_us = 0;
    std::uint64_t trace_spans = 0;
    std::uint64_t admission_events = 0;
    sat::Service::Stats stats;
    std::vector<sat::Service::PlanInfo> plans; ///< snapshot at quiescence
};

LoadReport run_load(double qps, double duration_s,
                    sat::Service::Options sopt, std::string_view trace_kind,
                    bool verify, sat::Backend backend, const ObsConfig& obs)
{
    const auto templates = make_trace(trace_kind);
    const auto n = static_cast<std::size_t>(qps * duration_s);
    LoadReport rep;
    rep.requests = n;
    if (n == 0)
        return rep;

    // Pre-generate the whole trace so image synthesis never skews pacing.
    std::vector<sat::AnyMatrix> images;
    std::vector<Dtype> outs;
    images.reserve(n);
    outs.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const Template& t = templates[i % templates.size()];
        images.push_back(random_image(t.pair.in, t.h, t.w,
                                      /*seed=*/0x5eedull * 1000003u + i));
        outs.push_back(t.pair.out);
    }

    // Observability sinks: owned here, handed to the service by pointer.
    sat::obs::MetricsRegistry registry;
    sat::obs::TraceSink sink;
    std::ofstream events_os;
    std::unique_ptr<sat::obs::EventLog> events;
    sopt.metrics = &registry;
    sopt.virtual_time = obs.virtual_time;
    if (!obs.trace_out.empty())
        sopt.trace = &sink;
    if (!obs.events_out.empty()) {
        events_os.open(obs.events_out, std::ios::binary | std::ios::trunc);
        if (!events_os) {
            std::cerr << "cannot open " << obs.events_out
                      << " for writing\n";
            std::exit(2);
        }
        events = std::make_unique<sat::obs::EventLog>(events_os);
        sopt.events = events.get();
    }

    sat::Service svc(sopt);

    // Periodic snapshot mode: rewrite the metrics file on a fixed cadence
    // while the load runs, like a scrape endpoint would serve it.
    std::atomic<bool> snapshotting{obs.metrics_every_ms > 0 &&
                                   !obs.metrics_out.empty()};
    std::thread snapshotter;
    if (snapshotting.load()) {
        snapshotter = std::thread([&] {
            while (snapshotting.load(std::memory_order_relaxed)) {
                write_file_or_die(obs.metrics_out, svc.metrics_json());
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(obs.metrics_every_ms));
            }
        });
    }

    std::vector<std::future<sat::AnyMatrix>> futures(n);
    std::vector<Clock::time_point> submitted(n);

    const auto interval =
        std::chrono::duration<double>(duration_s / static_cast<double>(n));
    const auto start = Clock::now();
    for (std::size_t i = 0; i < n; ++i) {
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<Clock::duration>(
                        interval * static_cast<double>(i)));
        submitted[i] = Clock::now();
        sat::Service::Request req;
        req.image = sat::AnyMatrix(images[i]);
        req.out = outs[i];
        req.backend = backend;
        futures[i] = svc.submit(std::move(req));
    }

    std::vector<double> latencies;
    latencies.reserve(n);
    std::uint64_t rejected_seen = 0;
    sat::Runtime oracle; // serial CPU reference for --verify
    for (std::size_t i = 0; i < n; ++i) {
        try {
            sat::AnyMatrix table = futures[i].get();
            latencies.push_back(us_between(submitted[i], Clock::now()));
            if (verify) {
                ++rep.verified;
                if (!(table == oracle.reference(images[i], outs[i])))
                    ++rep.mismatches;
            }
        } catch (const sat::QueueFullError&) {
            ++rejected_seen;
        }
    }
    const auto end = Clock::now();

    rep.elapsed_us = us_between(start, end);
    rep.throughput_rps =
        static_cast<double>(latencies.size()) / (rep.elapsed_us * 1e-6);
    rep.p50_us = bench::percentile(latencies, 50);
    rep.p99_us = bench::percentile(latencies, 99);
    for (const double l : latencies)
        rep.mean_us += l;
    if (!latencies.empty())
        rep.mean_us /= static_cast<double>(latencies.size());
    rep.stats = svc.stats();
    rep.plans = svc.plan_info();
    SATGPU_CHECK(rep.stats.rejected == rejected_seen,
                 "rejection accounting out of sync");

    if (snapshotter.joinable()) {
        snapshotting.store(false);
        snapshotter.join();
    }
    // Final outputs, written at quiescence (every future joined above).
    if (!obs.metrics_out.empty())
        write_file_or_die(obs.metrics_out, svc.metrics_json());
    if (!obs.trace_out.empty()) {
        std::ofstream os(obs.trace_out, std::ios::binary | std::ios::trunc);
        if (!os) {
            std::cerr << "cannot open " << obs.trace_out
                      << " for writing\n";
            std::exit(2);
        }
        sink.write_chrome_trace(os);
    }
    rep.trace_spans = sink.span_count();
    if (events)
        rep.admission_events = events->count();
    return rep;
}

struct CompareReport {
    std::int64_t side = 512;
    int burst = 8;
    double single_modeled_us = 0;
    double fused_modeled_us = 0;
    double modeled_speedup = 0;
    double single_wall_us = 0;
    double fused_wall_us = 0;
    std::uint64_t fused_waves = 0;
    std::uint64_t fused_max_wave = 0;
};

/// Push one warm-up then a burst of `burst` same-key images through `svc`;
/// returns (modeled_us delta, wall_us) for the burst alone.  The warm-up
/// occupies the worker while the burst enqueues, so a coalescing service
/// deterministically sees the whole burst queued when it next gathers.
std::pair<double, double> run_burst(sat::Service& svc,
                                    const std::vector<sat::AnyMatrix>& images,
                                    int burst)
{
    (void)svc.submit(sat::AnyMatrix(images[0]), Dtype::u32_).get();
    const double before = svc.stats().modeled_gpu_us;
    const auto start = Clock::now();
    std::vector<std::future<sat::AnyMatrix>> futs;
    futs.reserve(static_cast<std::size_t>(burst));
    for (int i = 0; i < burst; ++i)
        futs.push_back(svc.submit(
            sat::AnyMatrix(images[static_cast<std::size_t>(i) + 1]),
            Dtype::u32_));
    for (auto& f : futs)
        (void)f.get();
    const double wall = us_between(start, Clock::now());
    return {svc.stats().modeled_gpu_us - before, wall};
}

CompareReport run_compare()
{
    CompareReport rep;
    std::vector<sat::AnyMatrix> images;
    for (int i = 0; i <= rep.burst; ++i)
        images.push_back(random_image(
            Dtype::u8_, rep.side, rep.side,
            /*seed=*/std::uint64_t{0xc0a1e5ce} +
                static_cast<std::uint64_t>(i)));

    sat::Service::Options single;
    single.workers = 1;
    single.max_wave = 1;
    sat::Service svc_single(single);
    std::tie(rep.single_modeled_us, rep.single_wall_us) =
        run_burst(svc_single, images, rep.burst);

    sat::Service::Options fused;
    fused.workers = 1;
    fused.max_wave = rep.burst;
    fused.max_linger = std::chrono::microseconds(200'000);
    sat::Service svc_fused(fused);
    std::tie(rep.fused_modeled_us, rep.fused_wall_us) =
        run_burst(svc_fused, images, rep.burst);
    const auto fstats = svc_fused.stats();
    rep.fused_waves = fstats.waves - 1; // minus the warm-up wave
    rep.fused_max_wave = fstats.max_wave_size;

    rep.modeled_speedup = rep.fused_modeled_us > 0
                              ? rep.single_modeled_us / rep.fused_modeled_us
                              : 0;
    return rep;
}

void emit_json(const sat::Service::Options& sopt, double qps,
               double duration_s, std::string_view trace_kind, bool verify,
               const LoadReport& load, const CompareReport* compare)
{
    JsonWriter w(std::cout);
    bench::bench_json_prelude(w, "serve");
    w.key("config");
    w.begin_object();
    w.key("qps");
    w.value(qps);
    w.key("duration_s");
    w.value(duration_s);
    w.key("workers");
    w.value(sopt.workers);
    w.key("max_wave");
    w.value(sopt.max_wave);
    w.key("linger_us");
    w.value(static_cast<std::int64_t>(sopt.max_linger.count()));
    w.key("max_queue");
    w.value(static_cast<std::uint64_t>(sopt.max_queue));
    w.key("policy");
    w.value(sopt.policy == sat::Service::AdmissionPolicy::kBlock
                ? "block"
                : "reject");
    w.key("trace");
    w.value(trace_kind);
    w.key("verify");
    w.value(verify);
    w.end_object();

    w.key("load");
    w.begin_object();
    w.key("requests");
    w.value(load.requests);
    w.key("completed");
    w.value(load.stats.completed);
    w.key("rejected");
    w.value(load.stats.rejected);
    w.key("blocked");
    w.value(load.stats.blocked);
    w.key("failed");
    w.value(load.stats.failed);
    w.key("verified");
    w.value(load.verified);
    w.key("mismatches");
    w.value(load.mismatches);
    w.key("throughput_rps");
    w.value(load.throughput_rps);
    w.key("latency_us");
    w.begin_object();
    w.key("p50");
    w.value(load.p50_us);
    w.key("p99");
    w.value(load.p99_us);
    w.key("mean");
    w.value(load.mean_us);
    w.end_object();
    w.key("service");
    w.begin_object();
    w.key("plan_hits");
    w.value(load.stats.plan_hits);
    w.key("plan_misses");
    w.value(load.stats.plan_misses);
    w.key("plans_instantiated");
    w.value(load.stats.plans_instantiated);
    w.key("waves");
    w.value(load.stats.waves);
    w.key("fused_requests");
    w.value(load.stats.fused_requests);
    w.key("max_wave_size");
    w.value(load.stats.max_wave_size);
    w.key("max_queue_depth");
    w.value(load.stats.max_queue_depth);
    w.key("modeled_gpu_us");
    w.value(load.stats.modeled_gpu_us);
    w.end_object();
    // Per plan key: the label plus how the plan resolved -- which
    // algorithm, which execution backend, and whether it holds a hazard
    // certificate (docs/backends.md).
    w.key("plans");
    w.begin_array();
    for (const auto& p : load.plans) {
        w.begin_object();
        w.key("key");
        w.value(p.label);
        w.key("algorithm");
        w.value(sat::to_string(p.algorithm));
        w.key("backend");
        w.value(sat::to_string(p.backend));
        w.key("certified");
        w.value(p.certified);
        w.end_object();
    }
    w.end_array();
    w.end_object();

    w.key("compare");
    if (compare != nullptr) {
        w.begin_object();
        w.key("shape");
        w.value(std::to_string(compare->side) + "x" +
                std::to_string(compare->side));
        w.key("dtypes");
        w.value(pair_name({Dtype::u8_, Dtype::u32_}));
        w.key("burst");
        w.value(compare->burst);
        w.key("single_modeled_us");
        w.value(compare->single_modeled_us);
        w.key("fused_modeled_us");
        w.value(compare->fused_modeled_us);
        w.key("modeled_speedup");
        w.value(compare->modeled_speedup);
        w.key("single_wall_us");
        w.value(compare->single_wall_us);
        w.key("fused_wall_us");
        w.value(compare->fused_wall_us);
        w.key("fused_waves");
        w.value(compare->fused_waves);
        w.key("fused_max_wave");
        w.value(compare->fused_max_wave);
        w.end_object();
    } else {
        w.null();
    }
    w.end_object();
    std::cout << '\n';
}

int usage(int code)
{
    std::cout
        << "usage: satgpu_serve [--qps N] [--duration SEC] [--workers W]\n"
           "                    [--wave K] [--linger-us U] [--queue N]\n"
           "                    [--policy block|reject] [--trace "
           "same|mixed]\n"
           "                    [--backend sim|native|auto]\n"
           "                    [--verify] [--compare] [--json]\n"
           "                    [--metrics-out F] [--metrics-every MS]\n"
           "                    [--trace-out F] [--events-out F]\n"
           "                    [--virtual-time]\n"
           "  Load phase: paced open-loop trace through sat::Service;\n"
           "  reports p50/p99 latency, throughput and service counters.\n"
           "  --backend B  requested execution backend for every request\n"
           "            (default sim).  native/auto run hazard-certified\n"
           "            plans as plain vectorized loops; uncertified plans\n"
           "            fall back to the simulator (docs/backends.md)\n"
           "  --verify  check every table against the serial CPU oracle\n"
           "  --compare also run the 8-image 512x512 coalescing burst and\n"
           "            report the modeled fused-vs-single speedup\n"
           "  --json    emit the satgpu-bench-v1 document (BENCH_serve."
           "json)\n"
           "  --metrics-out F   write the satgpu-metrics-v1 JSON snapshot\n"
           "  --metrics-every MS  also rewrite F every MS ms during load\n"
           "  --trace-out F     write the merged Chrome/Perfetto trace\n"
           "                    (request spans over kernel phase ranges)\n"
           "  --events-out F    write admission decisions as JSONL\n"
           "  --virtual-time    latencies/spans on the deterministic\n"
           "                    logical clock instead of wall time\n";
    return code;
}

} // namespace

int main(int argc, char** argv)
{
    double qps = 100;
    double duration_s = 1;
    std::string trace_kind = "mixed";
    bool verify = false;
    bool compare = false;
    sat::Backend backend = sat::Backend::kSim;
    ObsConfig obs;
    sat::Service::Options sopt;
    sopt.workers = 2;
    sopt.max_wave = 8;
    sopt.max_linger = std::chrono::microseconds(2000);
    sopt.max_queue = 256;

    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        const auto next = [&]() -> const char* {
            if (i + 1 >= argc)
                std::exit(usage(2));
            return argv[++i];
        };
        if (arg == "--qps")
            qps = std::strtod(next(), nullptr);
        else if (arg == "--duration")
            duration_s = std::strtod(next(), nullptr);
        else if (arg == "--workers")
            sopt.workers = static_cast<int>(std::strtol(next(), nullptr, 10));
        else if (arg == "--wave")
            sopt.max_wave = static_cast<int>(std::strtol(next(), nullptr, 10));
        else if (arg == "--linger-us")
            sopt.max_linger =
                std::chrono::microseconds(std::strtol(next(), nullptr, 10));
        else if (arg == "--queue")
            sopt.max_queue =
                static_cast<std::size_t>(std::strtoul(next(), nullptr, 10));
        else if (arg == "--policy") {
            const std::string_view p = next();
            if (p == "block")
                sopt.policy = sat::Service::AdmissionPolicy::kBlock;
            else if (p == "reject")
                sopt.policy = sat::Service::AdmissionPolicy::kReject;
            else
                return usage(2);
        } else if (arg == "--trace") {
            trace_kind = next();
            if (trace_kind != "same" && trace_kind != "mixed")
                return usage(2);
        } else if (arg == "--backend") {
            const std::string_view b = next();
            if (b == "sim")
                backend = sat::Backend::kSim;
            else if (b == "native")
                backend = sat::Backend::kNative;
            else if (b == "auto")
                backend = sat::Backend::kAuto;
            else
                return usage(2);
        } else if (arg == "--metrics-out")
            obs.metrics_out = next();
        else if (arg == "--metrics-every")
            obs.metrics_every_ms = std::strtol(next(), nullptr, 10);
        else if (arg == "--trace-out")
            obs.trace_out = next();
        else if (arg == "--events-out")
            obs.events_out = next();
        else if (arg == "--virtual-time")
            obs.virtual_time = true;
        else if (arg == "--verify")
            verify = true;
        else if (arg == "--compare")
            compare = true;
        else if (arg == "--json")
            ; // handled by bench_json_requested
        else
            return usage(arg == "--help" || arg == "-h" ? 0 : 2);
    }
    const bool json = bench::bench_json_requested(argc, argv);

    const LoadReport load =
        run_load(qps, duration_s, sopt, trace_kind, verify, backend, obs);
    CompareReport cmp;
    if (compare)
        cmp = run_compare();

    if (json) {
        emit_json(sopt, qps, duration_s, trace_kind, verify, load,
                  compare ? &cmp : nullptr);
    } else {
        std::cout << "load: " << load.stats.completed << "/" << load.requests
                  << " completed (" << load.stats.rejected << " rejected), "
                  << load.throughput_rps << " rps\n"
                  << "  latency p50 " << load.p50_us / 1000.0 << " ms, p99 "
                  << load.p99_us / 1000.0 << " ms, mean "
                  << load.mean_us / 1000.0 << " ms\n"
                  << "  plans: " << load.stats.plan_misses << " planned, "
                  << load.stats.plan_hits << " cache hits, "
                  << load.stats.plans_instantiated << " instantiated\n"
                  << "  waves: " << load.stats.waves << " ("
                  << load.stats.fused_requests
                  << " requests fused, max wave "
                  << load.stats.max_wave_size << ", peak queue "
                  << load.stats.max_queue_depth << ")\n"
                  << "  modeled GPU time: "
                  << load.stats.modeled_gpu_us / 1000.0 << " ms\n";
        if (backend != sat::Backend::kSim)
            for (const auto& p : load.plans)
                std::cout << "  plan " << p.label << ": "
                          << sat::to_string(p.backend)
                          << (p.certified ? " (certified)" : "") << "\n";
        if (obs.any())
            std::cout << "  obs: " << load.trace_spans << " trace spans, "
                      << load.admission_events << " admission events\n";
        if (verify)
            std::cout << "  verify: " << load.verified << " checked, "
                      << load.mismatches << " mismatches\n";
        if (compare)
            std::cout << "compare (512x512 8u32u, burst of " << cmp.burst
                      << "):\n  modeled " << cmp.single_modeled_us
                      << " us single vs " << cmp.fused_modeled_us
                      << " us fused -> " << cmp.modeled_speedup
                      << "x\n  wall " << cmp.single_wall_us / 1000.0
                      << " ms single vs " << cmp.fused_wall_us / 1000.0
                      << " ms fused (" << cmp.fused_waves << " wave(s), max "
                      << cmp.fused_max_wave << ")\n";
    }

    if (verify && load.mismatches > 0) {
        std::cerr << "verify FAILED: " << load.mismatches
                  << " table(s) differ from the serial oracle\n";
        return 1;
    }
    return 0;
}
