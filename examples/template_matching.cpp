// Fast template matching with Summed Area Tables (Lewis [15]).
//
// Locating a template by normalized scores requires, at every candidate
// window, the window's sum and sum-of-squares -- which are O(1) from two
// SATs instead of O(template area).  This example plants a patch in a noisy
// scene and recovers it by minimizing the sum of squared differences,
// expanded as  SSD = sum(I^2) - 2*sum(I*T) + sum(T^2)  where the first term
// comes from the squares SAT; the cross term uses the raw image (as Lewis'
// method does for the numerator).
#include "core/random_fill.hpp"
#include "sat/sat.hpp"

#include <iostream>
#include <limits>

namespace {

using namespace satgpu;

constexpr std::int64_t kScene = 256, kTpl = 24;

} // namespace

int main()
{
    // Scene + planted template at a known location.
    Matrix<u8> scene(kScene, kScene);
    fill_random(scene, 11, u8{0}, u8{255});
    Matrix<u8> tpl(kTpl, kTpl);
    fill_random(tpl, 99, u8{0}, u8{255});
    const std::int64_t ty = 173, tx = 41;
    for (std::int64_t y = 0; y < kTpl; ++y)
        for (std::int64_t x = 0; x < kTpl; ++x)
            scene(ty + y, tx + x) = tpl(y, x);

    // SATs of the scene and of its squares, both on the simulated GPU.
    Matrix<u32> squares(kScene, kScene);
    for (std::int64_t i = 0; i < scene.size(); ++i) {
        const auto v = static_cast<u32>(
            scene.flat()[static_cast<std::size_t>(i)]);
        squares.flat()[static_cast<std::size_t>(i)] = v * v;
    }
    simt::Engine engine;
    const auto sat_sq =
        sat::compute_sat<std::uint64_t>(engine, squares,
                                        {sat::Algorithm::kBrltScanRow})
            .table;

    // Template energy, once.
    std::uint64_t tpl_sq = 0;
    for (const auto v : tpl.flat())
        tpl_sq += static_cast<std::uint64_t>(v) * v;

    // Slide: SSD(y,x) = winSq - 2*cross + tplSq; winSq is O(1) via the SAT,
    // cross is the only O(kTpl^2) term (Lewis' formulation).
    std::int64_t best_y = -1, best_x = -1;
    std::uint64_t best = std::numeric_limits<std::uint64_t>::max();
    for (std::int64_t y = 0; y + kTpl <= kScene; ++y)
        for (std::int64_t x = 0; x + kTpl <= kScene; ++x) {
            const auto win_sq = static_cast<std::uint64_t>(sat::rect_sum(
                sat_sq, y, x, y + kTpl - 1, x + kTpl - 1));
            std::int64_t cross = 0;
            for (std::int64_t dy = 0; dy < kTpl; ++dy)
                for (std::int64_t dx = 0; dx < kTpl; ++dx)
                    cross += std::int64_t{scene(y + dy, x + dx)} *
                             tpl(dy, dx);
            const std::uint64_t ssd =
                win_sq + tpl_sq - 2 * static_cast<std::uint64_t>(cross);
            if (ssd < best) {
                best = ssd;
                best_y = y;
                best_x = x;
            }
        }

    std::cout << "planted at (" << ty << ", " << tx << "), found at ("
              << best_y << ", " << best_x << "), SSD = " << best << '\n';
    std::cout << (best_y == ty && best_x == tx && best == 0
                      ? "exact match recovered\n"
                      : "MISMATCH\n");
    return best_y == ty && best_x == tx ? 0 : 1;
}
