// Quickstart: compute a Summed Area Table through the type-erased runtime,
// query rectangle sums in O(1), and compare the available algorithms.
//
//   $ ./examples/quickstart
#include "model/timing.hpp"
#include "sat/runtime.hpp"

#include <iostream>

int main()
{
    using namespace satgpu;

    // 1. Make an image.  The dtype pair is a runtime tag -- "8u32u" could
    //    come straight from a command line (see tools/satgpu_cli.cpp); all
    //    seven pairs from the paper's Table 3 are in the kernel registry.
    const auto pair = parse_dtype_pair("8u32u");
    const auto image =
        sat::AnyMatrix::random(pair->in, 512, 512, /*seed=*/2024);

    // 2. Plan once, then execute: the runtime resolves the dtype pair
    //    against its kernel registry and runs the simulated-GPU kernels on
    //    pooled device buffers.
    sat::Runtime rt;
    const auto plan = rt.plan({.height = 512,
                               .width = 512,
                               .dtypes = *pair,
                               .algorithm = sat::Algorithm::kBrltScanRow});
    const auto result = plan.execute(image);
    const Matrix<u32>& table = result.table.as<u32>();

    std::cout << "SAT of a 512x512 8u image -> 32u table\n";
    std::cout << "table(511,511) = " << table(511, 511)
              << " (sum of the whole image)\n\n";

    // 3. O(1) rectangle sums via a + d - b - c (paper Fig. 1).
    const Matrix<u8>& img = image.as<u8>();
    std::cout << "sum over rows 100..199, cols 50..149: "
              << sat::rect_sum(table, 100, 50, 199, 149) << '\n';
    std::cout << "sum over single pixel (7, 9):         "
              << sat::rect_sum(table, 7, 9, 7, 9) << " (image says "
              << static_cast<int>(img(7, 9)) << ")\n\n";

    // 4. Every algorithm computes the same table; the launch stats feed the
    //    performance model.  One runtime serves all plans, so the scratch
    //    buffers are recycled across algorithms.
    int failures = 0;
    std::cout << "algorithm        kernels  est. time on P100 (us)\n";
    std::cout << "------------------------------------------------\n";
    for (const auto algo : sat::kAllAlgorithms) {
        const auto p = rt.plan({.height = 512,
                                .width = 512,
                                .dtypes = *pair,
                                .algorithm = algo});
        const auto r = p.execute(image);
        const bool same = r.table == result.table;
        if (!same)
            ++failures;
        std::cout << "  " << sat::to_string(algo);
        for (std::size_t i = sat::to_string(algo).size(); i < 15; ++i)
            std::cout << ' ';
        std::cout << r.launches.size() << "        "
                  << model::estimate_total_us(model::tesla_p100(),
                                              r.launches)
                  << (same ? "" : "   MISMATCH!") << '\n';
    }

    // 5. Or let the cost model choose: Algorithm::kAuto ranks all seven
    //    candidates by predicted time at this shape and dtype.
    const auto auto_plan = rt.plan({.height = 512,
                                    .width = 512,
                                    .dtypes = *pair,
                                    .algorithm = sat::Algorithm::kAuto});
    std::cout << "\ncost model picks: " << sat::to_string(auto_plan.algorithm())
              << " for 512x512 8u32u on P100\n";

    return failures == 0 ? 0 : 1;
}
