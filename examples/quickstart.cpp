// Quickstart: compute a Summed Area Table on the simulated GPU, query
// rectangle sums in O(1), and compare the available algorithms.
//
//   $ ./examples/quickstart
#include "core/random_fill.hpp"
#include "model/timing.hpp"
#include "sat/sat.hpp"

#include <iostream>

int main()
{
    using namespace satgpu;

    // 1. Make an image (any of 8u/32s/32u/32f/64f works as input).
    Matrix<u8> image(512, 512);
    fill_random(image, /*seed=*/2024);

    // 2. Compute its inclusive SAT with the paper's fastest algorithm.
    simt::Engine engine;
    const auto result = sat::compute_sat<u32>(
        engine, image, {sat::Algorithm::kBrltScanRow});
    const Matrix<u32>& table = result.table;

    std::cout << "SAT of a 512x512 8u image -> 32u table\n";
    std::cout << "table(511,511) = " << table(511, 511)
              << " (sum of the whole image)\n\n";

    // 3. O(1) rectangle sums via a + d - b - c (paper Fig. 1).
    std::cout << "sum over rows 100..199, cols 50..149: "
              << sat::rect_sum(table, 100, 50, 199, 149) << '\n';
    std::cout << "sum over single pixel (7, 9):         "
              << sat::rect_sum(table, 7, 9, 7, 9) << " (image says "
              << static_cast<int>(image(7, 9)) << ")\n\n";

    // 4. Every algorithm computes the same table; the launch stats feed the
    //    performance model.
    std::cout << "algorithm        kernels  est. time on P100 (us)\n";
    std::cout << "------------------------------------------------\n";
    for (const auto algo : sat::kAllAlgorithms) {
        simt::Engine eng;
        const auto r = sat::compute_sat<u32>(eng, image, {algo});
        const bool same = r.table == table;
        std::cout << "  " << sat::to_string(algo);
        for (std::size_t i = sat::to_string(algo).size(); i < 15; ++i)
            std::cout << ' ';
        std::cout << r.launches.size() << "        "
                  << model::estimate_total_us(model::tesla_p100(),
                                              r.launches)
                  << (same ? "" : "   MISMATCH!") << '\n';
    }
    return 0;
}
