// Multi-level Haar wavelet pyramid on the simulated GPU -- the paper's
// future-work claim (Sec. VII) driven end-to-end: each level runs the
// BRLT-fused DWT kernel twice, then recurses on the LL quadrant.
//
// Builds a synthetic scene, decomposes three levels, reports per-quadrant
// energy (detail energy concentrates at edges; LL keeps ~almost all of it),
// and writes the coefficient planes as PGM images next to the binary.
#include "core/dtype.hpp"
#include "core/pgm.hpp"
#include "core/random_fill.hpp"
#include "transforms/haar_dwt.hpp"

#include <cmath>
#include <iostream>

namespace {

using namespace satgpu;

/// A scene with structure at several scales: smooth gradient + blocks +
/// fine checkerboard texture.
Matrix<i32> make_scene(std::int64_t n)
{
    Matrix<i32> img(n, n);
    for (std::int64_t y = 0; y < n; ++y)
        for (std::int64_t x = 0; x < n; ++x) {
            double v = 40.0 + 60.0 * static_cast<double>(x + y) /
                                  static_cast<double>(2 * n);
            if ((x / 64 + y / 64) % 2 == 0)
                v += 70; // coarse blocks
            if (y < n / 4 && x % 2 == 0)
                v += 24; // vertical 1-px stripes -> LH detail
            if (y >= 3 * n / 4 && y % 2 == 0)
                v += 24; // horizontal 1-px stripes -> HL detail
            if (x >= 3 * n / 4 && (x + y) % 2 == 0)
                v += 24; // pixel checkerboard -> HH detail
            img(y, x) = static_cast<i32>(v);
        }
    return img;
}

double energy(const Matrix<i32>& m, std::int64_t y0, std::int64_t x0,
              std::int64_t h, std::int64_t w)
{
    double e = 0;
    for (std::int64_t y = y0; y < y0 + h; ++y)
        for (std::int64_t x = x0; x < x0 + w; ++x)
            e += static_cast<double>(m(y, x)) * m(y, x);
    return e;
}

} // namespace

int main()
{
    constexpr std::int64_t kN = 512;
    auto level_input = make_scene(kN);
    simt::Engine engine;

    std::cout << "3-level Haar pyramid of a " << kN << "x" << kN
              << " scene (BRLT-fused DWT kernels)\n\n";
    std::cout << "level  size   LL energy %  LH %    HL %    HH %   "
                 "shuffles\n";
    std::cout << "---------------------------------------------------------"
                 "--\n";

    for (int level = 1; level <= 3; ++level) {
        const auto res = transforms::haar_dwt_2d(engine, level_input);
        const auto& c = res.coeffs;
        const std::int64_t n = c.height();
        const double total = energy(c, 0, 0, n, n);
        const double ll = energy(c, 0, 0, n / 2, n / 2);
        const double lh = energy(c, 0, n / 2, n / 2, n / 2);
        const double hl = energy(c, n / 2, 0, n / 2, n / 2);
        const double hh = energy(c, n / 2, n / 2, n / 2, n / 2);
        std::uint64_t shfl = 0;
        for (const auto& l : res.launches)
            shfl += l.counters.warp_shfl;

        std::printf("  %d    %4ld   %8.3f   %6.3f  %6.3f  %6.3f   %llu\n",
                    level, static_cast<long>(n), 100 * ll / total,
                    100 * lh / total, 100 * hl / total, 100 * hh / total,
                    static_cast<unsigned long long>(shfl));

        write_pgm_normalized("wavelet_level" + std::to_string(level) +
                                 ".pgm",
                             c);

        // Recurse on the LL quadrant.
        Matrix<i32> next(n / 2, n / 2);
        for (std::int64_t y = 0; y < n / 2; ++y)
            for (std::int64_t x = 0; x < n / 2; ++x)
                next(y, x) = c(y, x);
        level_input = std::move(next);
    }

    std::cout << "\nAll butterflies ran intra-thread (0 shuffles); "
                 "coefficient planes written\nas wavelet_level{1,2,3}.pgm\n";

    // Sanity: level-1 round trip must reconstruct the original exactly.
    simt::Engine verify_engine;
    const auto scene = make_scene(kN);
    const auto coeffs = transforms::haar_dwt_2d(verify_engine, scene).coeffs;
    const bool ok =
        transforms::haar_idwt_2d_reference(coeffs) == scene;
    std::cout << (ok ? "round-trip reconstruction: exact\n"
                     : "round-trip reconstruction: MISMATCH\n");
    return ok ? 0 : 1;
}
