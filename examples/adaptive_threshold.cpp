// Bradley-Roth adaptive thresholding via integral images [7] -- document
// binarization that survives uneven illumination, one of the paper's
// motivating real-time vision workloads.
//
// A synthetic "document" (dark glyph strokes on paper) is corrupted with a
// strong illumination gradient.  A global threshold destroys half the page;
// the SAT-based local mean threshold recovers it.  Output is rendered as
// ASCII art.
#include "core/random_fill.hpp"
#include "sat/sat.hpp"

#include <cmath>
#include <iostream>

namespace {

using namespace satgpu;

constexpr std::int64_t kH = 96, kW = 192;

/// Paper-white page, dark horizontal "text" strokes, plus a left-to-right
/// illumination falloff.
Matrix<u8> make_document()
{
    Matrix<u8> img(kH, kW);
    for (std::int64_t y = 0; y < kH; ++y)
        for (std::int64_t x = 0; x < kW; ++x) {
            const bool stroke =
                (y % 12 >= 4 && y % 12 <= 6) && (x % 17) > 2;
            double v = stroke ? 60.0 : 220.0;
            v *= 0.25 + 0.75 * (1.0 - static_cast<double>(x) / kW);
            img(y, x) = static_cast<u8>(std::clamp(v, 0.0, 255.0));
        }
    return img;
}

Matrix<u8> threshold_global(const Matrix<u8>& img, int t)
{
    Matrix<u8> out(img.height(), img.width());
    for (std::int64_t y = 0; y < img.height(); ++y)
        for (std::int64_t x = 0; x < img.width(); ++x)
            out(y, x) = img(y, x) < t ? 1 : 0;
    return out;
}

/// Bradley-Roth: pixel is ink when it is `frac` darker than the mean of the
/// surrounding window -- four SAT lookups per pixel.
Matrix<u8> threshold_adaptive(const Matrix<u8>& img, const Matrix<u32>& table,
                              std::int64_t r, double frac)
{
    Matrix<u8> out(img.height(), img.width());
    for (std::int64_t y = 0; y < img.height(); ++y)
        for (std::int64_t x = 0; x < img.width(); ++x) {
            const std::int64_t y0 = std::max<std::int64_t>(0, y - r);
            const std::int64_t x0 = std::max<std::int64_t>(0, x - r);
            const std::int64_t y1 = std::min(img.height() - 1, y + r);
            const std::int64_t x1 = std::min(img.width() - 1, x + r);
            const double area =
                static_cast<double>((y1 - y0 + 1) * (x1 - x0 + 1));
            const double mean =
                static_cast<double>(sat::rect_sum(table, y0, x0, y1, x1)) /
                area;
            out(y, x) = static_cast<double>(img(y, x)) < mean * frac ? 1 : 0;
        }
    return out;
}

void render(std::string_view title, const Matrix<u8>& mask)
{
    std::cout << title << '\n';
    for (std::int64_t y = 0; y < mask.height(); y += 4) {
        for (std::int64_t x = 0; x < mask.width(); x += 2)
            std::cout << (mask(y, x) ? '#' : '.');
        std::cout << '\n';
    }
    std::cout << '\n';
}

struct Quality {
    double stroke_recall;    // ink pixels classified as ink
    double paper_specificity; // paper pixels classified as paper
};

Quality score(const Matrix<u8>& mask)
{
    std::int64_t ink_hit = 0, ink_total = 0, paper_hit = 0, paper_total = 0;
    for (std::int64_t y = 0; y < kH; ++y)
        for (std::int64_t x = 0; x < kW; ++x) {
            const bool stroke =
                (y % 12 >= 4 && y % 12 <= 6) && (x % 17) > 2;
            if (stroke) {
                ++ink_total;
                ink_hit += mask(y, x);
            } else {
                ++paper_total;
                paper_hit += mask(y, x) == 0 ? 1 : 0;
            }
        }
    return {static_cast<double>(ink_hit) / static_cast<double>(ink_total),
            static_cast<double>(paper_hit) /
                static_cast<double>(paper_total)};
}

} // namespace

int main()
{
    const auto doc = make_document();

    simt::Engine engine;
    const auto table =
        sat::compute_sat<u32>(engine, doc, {sat::Algorithm::kBrltScanRow})
            .table;

    const auto global = threshold_global(doc, 110);
    const auto adaptive = threshold_adaptive(doc, table, 12, 0.80);

    render("Global threshold (the dark page side floods to ink):", global);
    render("SAT-based adaptive threshold (Bradley-Roth):", adaptive);
    const auto g = score(global);
    const auto a = score(adaptive);
    std::cout << "global:   stroke recall " << g.stroke_recall * 100
              << "%, paper specificity " << g.paper_specificity * 100
              << "%\n";
    std::cout << "adaptive: stroke recall " << a.stroke_recall * 100
              << "%, paper specificity " << a.paper_specificity * 100
              << "%\n";
    return 0;
}
