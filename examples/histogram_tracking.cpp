// Region-histogram target localization with integral histograms
// (Poostchi et al. [34], [38]; Han et al. [3] visual tracking) -- the
// real-time tracking workload the paper's introduction motivates.
//
// A textured target patch is planted in a cluttered scene.  The integral
// histogram (one SAT per intensity bin, built on the simulated GPU) gives
// the histogram of ANY candidate window in O(bins); the tracker slides a
// window and maximizes histogram intersection with the target model.
// Without integral histograms each candidate would cost O(window area).
#include "core/dtype.hpp"
#include "core/random_fill.hpp"
#include "core/stopwatch.hpp"
#include "sat/integral_histogram.hpp"

#include <algorithm>
#include <iostream>

namespace {

using namespace satgpu;

constexpr std::int64_t kScene = 320, kWin = 48;
constexpr int kBins = 16;

double intersection(const std::vector<u32>& a, const std::vector<u32>& b)
{
    double s = 0;
    for (std::size_t i = 0; i < a.size(); ++i)
        s += std::min(a[i], b[i]);
    return s;
}

} // namespace

int main()
{
    // Scene: mid-gray clutter; target: strongly bimodal texture.
    Matrix<u8> scene(kScene, kScene);
    fill_random(scene, 15, u8{96}, u8{160});
    const std::int64_t ty = 201, tx = 77;
    std::mt19937_64 rng(99);
    for (std::int64_t y = 0; y < kWin; ++y)
        for (std::int64_t x = 0; x < kWin; ++x)
            scene(ty + y, tx + x) = (rng() % 2) ? u8{230} : u8{20};

    // Build the integral histogram on the simulated GPU.
    simt::Engine engine;
    Stopwatch build;
    const auto ih = sat::integral_histogram(engine, scene, kBins);
    std::cout << "integral histogram: " << kBins << " bins, "
              << ih.launches.size() << " kernel launches, built in "
              << build.elapsed_ms() << " ms (functional simulation)\n";

    // Target model = histogram of the true window (4*bins lookups).
    const auto target =
        ih.region(ty, tx, ty + kWin - 1, tx + kWin - 1);

    // Exhaustive sliding-window search, stride 4.
    Stopwatch search;
    std::int64_t best_y = -1, best_x = -1;
    double best = -1;
    std::int64_t candidates = 0;
    for (std::int64_t y = 0; y + kWin <= kScene; y += 4)
        for (std::int64_t x = 0; x + kWin <= kScene; x += 4) {
            const auto h = ih.region(y, x, y + kWin - 1, x + kWin - 1);
            const double score = intersection(h, target);
            ++candidates;
            if (score > best) {
                best = score;
                best_y = y;
                best_x = x;
            }
        }

    std::cout << candidates << " candidate windows scored in "
              << search.elapsed_ms() << " ms ("
              << 4 * kBins << " lookups each, window-size independent)\n";
    std::cout << "target planted at (" << ty << ", " << tx
              << "), best window at (" << best_y << ", " << best_x
              << "), score " << best << " / " << kWin * kWin << '\n';

    const bool ok = std::abs(best_y - ty) <= 3 && std::abs(best_x - tx) <= 3;
    std::cout << (ok ? "target localized\n" : "MISSED\n");
    return ok ? 0 : 1;
}
