// Batched execution through the type-erased runtime: plan once, stream a
// batch of same-shaped images through the plan, and watch the buffer pool
// recycle every device allocation after the first image.
//
// Exits nonzero when any table disagrees with the serial CPU reference or
// when the pool fails to reuse buffers -- the example doubles as an
// integration test in CI.
//
//   $ ./examples/runtime_batch
#include "sat/runtime.hpp"

#include <iostream>

int main()
{
    using namespace satgpu;

    constexpr std::int64_t kHeight = 384;
    constexpr std::int64_t kWidth = 512;
    constexpr int kBatch = 8;

    const auto pair = parse_dtype_pair("32f32f");

    // One plan for the whole batch: the cost model resolves kAuto to the
    // fastest algorithm for this shape/dtype, and every execute() below
    // inherits that choice.
    sat::Runtime rt;
    const auto plan = rt.plan({.height = kHeight,
                               .width = kWidth,
                               .dtypes = *pair,
                               .algorithm = sat::Algorithm::kAuto});
    std::cout << "plan: " << sat::to_string(plan.algorithm()) << " for "
              << kHeight << "x" << kWidth << " 32f32f, workspace "
              << plan.workspace_bytes() << " device bytes per image\n";

    std::vector<sat::AnyMatrix> images;
    images.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i)
        images.push_back(sat::AnyMatrix::random(
            pair->in, kHeight, kWidth, /*seed=*/100 + std::uint64_t(i)));

    const auto results = plan.execute_batch(images);

    // The first image allocates the plan's working set; every later image
    // reuses it.  `allocations` must therefore stay flat across the batch.
    const auto stats = rt.pool_stats();
    std::cout << "buffer pool after batch of " << kBatch << ": "
              << stats.allocations << " allocations, " << stats.reuses
              << " reuses, " << stats.bytes_allocated << " bytes\n";

    int failures = 0;
    for (std::size_t i = 0; i < images.size(); ++i) {
        const auto want = rt.reference(images[i], pair->out);
        if (!(results[i].table == want)) {
            std::cout << "image " << i << ": MISMATCH vs serial reference\n";
            ++failures;
        }
    }
    if (stats.reuses == 0) {
        std::cout << "buffer pool never reused an allocation\n";
        ++failures;
    }

    std::cout << (failures == 0 ? "all tables match the serial reference\n"
                                : "FAILED\n");
    return failures == 0 ? 0 : 1;
}
