// Haar-like feature evaluation with integral images, the core of the
// Viola-Jones real-time face-detection cascade [2] that made SATs a
// household primitive in vision.
//
// Evaluates two-rectangle (edge) and three-rectangle (line) features over a
// synthetic image containing a bright-over-dark edge, and shows that the
// feature responses peak exactly on the structure -- each feature costing
// only 6-8 SAT lookups regardless of its size.
#include "core/random_fill.hpp"
#include "sat/sat.hpp"

#include <iostream>

namespace {

using namespace satgpu;

constexpr std::int64_t kN = 128;

/// Two-rectangle vertical edge feature: bright top half minus dark bottom
/// half of a (2h x w) window anchored at (y, x).
std::int64_t edge_feature(const Matrix<i32>& table, std::int64_t y,
                          std::int64_t x, std::int64_t h, std::int64_t w)
{
    const auto top = sat::rect_sum(table, y, x, y + h - 1, x + w - 1);
    const auto bottom =
        sat::rect_sum(table, y + h, x, y + 2 * h - 1, x + w - 1);
    return top - bottom;
}

/// Three-rectangle line feature: centre band minus flanking bands of a
/// (3h x w) window.
std::int64_t line_feature(const Matrix<i32>& table, std::int64_t y,
                          std::int64_t x, std::int64_t h, std::int64_t w)
{
    const auto a = sat::rect_sum(table, y, x, y + h - 1, x + w - 1);
    const auto b = sat::rect_sum(table, y + h, x, y + 2 * h - 1, x + w - 1);
    const auto c =
        sat::rect_sum(table, y + 2 * h, x, y + 3 * h - 1, x + w - 1);
    return 2 * b - a - c;
}

} // namespace

int main()
{
    // Bright region above row 64, dark below; a bright band at rows 88..95.
    Matrix<u8> img(kN, kN);
    fill_random(img, 3, u8{0}, u8{20}); // noise floor
    for (std::int64_t y = 0; y < kN; ++y)
        for (std::int64_t x = 0; x < kN; ++x) {
            if (y < 64)
                img(y, x) = static_cast<u8>(img(y, x) + 180);
            if (y >= 88 && y < 96)
                img(y, x) = static_cast<u8>(img(y, x) + 200);
        }

    simt::Engine engine;
    const auto table =
        sat::compute_sat<i32>(engine, img, {sat::Algorithm::kBrltScanRow})
            .table;

    // Sweep the edge feature down the image; it must peak at the 64-row
    // boundary (window straddling the edge).
    std::int64_t best_edge_y = -1, best_edge = 0;
    for (std::int64_t y = 0; y + 32 <= kN; ++y) {
        const auto f = edge_feature(table, y, 16, 16, 96);
        if (f > best_edge) {
            best_edge = f;
            best_edge_y = y;
        }
    }
    std::cout << "edge feature peaks with its top half at y = "
              << best_edge_y << " (edge at 48..64 -> expect 48)\n";

    // Sweep the line feature; it must peak centred on the 88..95 band.
    std::int64_t best_line_y = -1, best_line = 0;
    for (std::int64_t y = 0; y + 24 <= kN; ++y) {
        const auto f = line_feature(table, y, 16, 8, 96);
        if (f > best_line) {
            best_line = f;
            best_line_y = y;
        }
    }
    std::cout << "line feature peaks with its centre band at y = "
              << best_line_y + 8 << " (band at 88..96 -> expect 88)\n";

    const bool ok = best_edge_y == 48 && best_line_y + 8 == 88;
    std::cout << (ok ? "both features localize the structure\n"
                     : "MISMATCH\n");
    return ok ? 0 : 1;
}
