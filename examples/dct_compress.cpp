// JPEG-style transform coding with the BRLT-fused 8x8 DCT (paper Sec. VII):
// transform, keep only the K largest-magnitude coefficients per block,
// reconstruct, and report PSNR -- demonstrating the classic energy
// compaction that makes the DCT worth accelerating.
#include "core/dtype.hpp"
#include "core/pgm.hpp"
#include "core/random_fill.hpp"
#include "transforms/dct8.hpp"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <vector>

namespace {

using namespace satgpu;

Matrix<f64> make_photo_like(std::int64_t n)
{
    Matrix<f64> img(n, n);
    for (std::int64_t y = 0; y < n; ++y)
        for (std::int64_t x = 0; x < n; ++x) {
            const double fx = static_cast<double>(x) / static_cast<double>(n);
            const double fy = static_cast<double>(y) / static_cast<double>(n);
            double v = 128 + 80 * std::sin(6.28 * fx) * std::cos(3.14 * fy);
            v += 20 * std::sin(40.0 * fx * fy); // mid-frequency texture
            img(y, x) = v;
        }
    return img;
}

Matrix<f64> keep_top_k(const Matrix<f64>& coeffs, int k)
{
    Matrix<f64> out(coeffs.height(), coeffs.width());
    std::vector<std::pair<double, int>> mags(64);
    for (std::int64_t by = 0; by < coeffs.height(); by += 8)
        for (std::int64_t bx = 0; bx < coeffs.width(); bx += 8) {
            for (int i = 0; i < 64; ++i)
                mags[static_cast<std::size_t>(i)] = {
                    std::abs(coeffs(by + i / 8, bx + i % 8)), i};
            std::partial_sort(mags.begin(), mags.begin() + k, mags.end(),
                              [](auto& a, auto& b) { return a.first > b.first; });
            for (int i = 0; i < k; ++i) {
                const int idx = mags[static_cast<std::size_t>(i)].second;
                out(by + idx / 8, bx + idx % 8) =
                    coeffs(by + idx / 8, bx + idx % 8);
            }
        }
    return out;
}

double psnr(const Matrix<f64>& a, const Matrix<f64>& b)
{
    double mse = 0;
    for (std::int64_t i = 0; i < a.size(); ++i) {
        const double d = a.flat()[static_cast<std::size_t>(i)] -
                         b.flat()[static_cast<std::size_t>(i)];
        mse += d * d;
    }
    mse /= static_cast<double>(a.size());
    return 10 * std::log10(255.0 * 255.0 / mse);
}

} // namespace

int main()
{
    constexpr std::int64_t kN = 256;
    const auto img = make_photo_like(kN);

    simt::Engine engine;
    const auto res = transforms::dct8x8_2d(engine, img);
    std::cout << "8x8 blockwise DCT of a " << kN << "x" << kN
              << " image (BRLT-fused, "
              << res.launches[0].counters.warp_shfl << " shuffles)\n\n";
    std::cout << "kept coeffs/block  compression  PSNR (dB)\n";
    std::cout << "------------------------------------------\n";
    for (const int k : {1, 4, 8, 16, 32, 64}) {
        const auto pruned = keep_top_k(res.coeffs, k);
        const auto back = transforms::idct8x8_2d_reference(pruned);
        std::cout << "       " << k << (k < 10 ? " " : "") << "              "
                  << 64 / k << ":1        "
                  << (k == 64 ? 99.0 : psnr(img, back)) << '\n';
        if (k == 8)
            write_pgm_normalized("dct_reconstructed_k8.pgm", back);
    }
    std::cout << "\nreconstruction with 8/64 coefficients written to "
                 "dct_reconstructed_k8.pgm\n";
    return 0;
}
