// Box filter via Summed Area Tables -- Crow's original use case [1] and the
// staple "blur in O(1) per pixel regardless of radius" trick.
//
// Builds a synthetic image, blurs it with radii 1..32 through the SAT, and
// cross-checks a direct sliding-window sum.  The SAT route does 4 lookups
// per pixel; the direct route does (2r+1)^2 adds per pixel.
#include "core/random_fill.hpp"
#include "core/stopwatch.hpp"
#include "sat/sat.hpp"

#include <algorithm>
#include <iostream>

namespace {

using namespace satgpu;

/// Mean over the clamped (2r+1)-square window, from the inclusive SAT.
Matrix<f32> box_blur_sat(const Matrix<u32>& table, std::int64_t r)
{
    const std::int64_t h = table.height(), w = table.width();
    Matrix<f32> out(h, w);
    for (std::int64_t y = 0; y < h; ++y)
        for (std::int64_t x = 0; x < w; ++x) {
            const std::int64_t y0 = std::max<std::int64_t>(0, y - r);
            const std::int64_t x0 = std::max<std::int64_t>(0, x - r);
            const std::int64_t y1 = std::min(h - 1, y + r);
            const std::int64_t x1 = std::min(w - 1, x + r);
            const auto sum = sat::rect_sum(table, y0, x0, y1, x1);
            const auto area =
                static_cast<f32>((y1 - y0 + 1) * (x1 - x0 + 1));
            out(y, x) = static_cast<f32>(sum) / area;
        }
    return out;
}

/// Direct O(r^2)-per-pixel window mean, the correctness oracle.
Matrix<f32> box_blur_direct(const Matrix<u8>& img, std::int64_t r)
{
    const std::int64_t h = img.height(), w = img.width();
    Matrix<f32> out(h, w);
    for (std::int64_t y = 0; y < h; ++y)
        for (std::int64_t x = 0; x < w; ++x) {
            double sum = 0;
            std::int64_t count = 0;
            for (std::int64_t dy = -r; dy <= r; ++dy)
                for (std::int64_t dx = -r; dx <= r; ++dx)
                    if (img.in_bounds(y + dy, x + dx)) {
                        sum += img(y + dy, x + dx);
                        ++count;
                    }
            out(y, x) = static_cast<f32>(sum / static_cast<double>(count));
        }
    return out;
}

} // namespace

int main()
{
    Matrix<u8> image(384, 384);
    fill_random(image, 7, u8{0}, u8{255});

    // One SAT on the simulated GPU serves every radius.
    simt::Engine engine;
    Stopwatch sat_watch;
    const auto table =
        sat::compute_sat<u32>(engine, image, {sat::Algorithm::kBrltScanRow})
            .table;
    std::cout << "SAT build (functional GPU simulation): "
              << sat_watch.elapsed_ms() << " ms\n\n";
    std::cout << "radius  SAT blur (ms)  direct blur (ms)  max |diff|\n";
    std::cout << "---------------------------------------------------\n";

    for (const std::int64_t r : {1, 4, 16, 32}) {
        Stopwatch t1;
        const auto fast = box_blur_sat(table, r);
        const double sat_ms = t1.elapsed_ms();
        Stopwatch t2;
        const auto slow = box_blur_direct(image, r);
        const double direct_ms = t2.elapsed_ms();
        std::cout << "  " << r << "\t  " << sat_ms << "\t " << direct_ms
                  << "\t   " << max_abs_diff(fast, slow) << '\n';
    }
    std::cout << "\nThe SAT route is radius-independent; the direct route "
                 "grows as (2r+1)^2.\n";
    return 0;
}
